"""Partition-aware router: one front door over a primary and its replicas.

The :class:`PartitionRouter` speaks the same NDJSON/binary wire protocol as
:class:`~repro.service.server.QueryService`, so existing clients point at it
unchanged.  Behind it:

* **Writes** (``ingest_batch`` / ``evict_before`` / ``checkpoint``) fan in
  to the primary.  The commit sequence in each receipt becomes the router's
  **read-your-writes bound**: no read is served from a replica until that
  replica has applied at least the last routed write.
* **Reads** (``top_k`` / ``flow`` / ``flows`` / ``batch`` / ``subscribe``)
  are routed across the replicas by **time-partition affinity**: the query
  window's start shard (``floor(start / shard_seconds)``) picks the replica
  modulo the pool size.  Queries over the same time slice land on the same
  replica, so each replica's presence cache specialises on its slice of the
  keyspace — the pool's effective cache is the *sum* of the per-replica
  caches, not N copies of the same one.
* **Staleness** is bounded, not ignored: before serving a read, the router
  compares the target replica's applied sequence (cached, refreshed via
  ``replica_status``) against the read-your-writes bound, waiting briefly
  for the tail to catch up; if a replica cannot catch up inside
  ``freshness_timeout`` (or is down), the read falls back to the primary —
  correctness degrades to primary load, never to stale answers.
* **Subscriptions** are forwarded to the partition-owning replica with an
  id translation (router ids are globally unique; backend ids are only
  unique per backend) and pushes are relayed back over the subscribing
  client's connection.

Routed responses are **bit-identical** to single-server responses: the
router never rewrites result payloads, replicas apply the same commit
prefix through the same ingest path, and reads wait out any lag — which is
exactly what the replication benchmark asserts.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Tuple

from . import protocol
from .client import ReconnectPolicy, ServiceClient, ServiceError
from .protocol import ProtocolError

#: Operations the router forwards to the primary (fan-in).
WRITE_OPS = frozenset(protocol.MUTATING_OPS)
#: Operations routed across replicas by partition affinity.
PARTITIONED_READ_OPS = frozenset(("top_k", "flow", "flows", "batch"))


class _RouterConnection:
    """One client connection to the router (outbox + writer task)."""

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.outbox: "asyncio.Queue[Optional[dict]]" = asyncio.Queue()
        self.writer_task: Optional[asyncio.Task] = None
        #: Router subscription ids owned by this connection.
        self.subscriptions: set = set()
        self.closing = False

    def send_frame(self, frame: dict) -> None:
        if not self.closing:
            self.outbox.put_nowait(frame)

    async def run_writer(self) -> None:
        while True:
            frame = await self.outbox.get()
            if frame is None:
                break
            try:
                self.writer.write(protocol.encode_frame(frame))
                await self.writer.drain()
            except (ConnectionError, RuntimeError):
                break

    async def flush_and_close(self) -> None:
        self.closing = True
        self.outbox.put_nowait(None)
        if self.writer_task is not None:
            await self.writer_task
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class PartitionRouter:
    """An asyncio front-end fanning one write stream and many read streams.

    Parameters
    ----------
    primary:
        ``(host, port)`` of the primary query service.
    replicas:
        ``(host, port)`` of each read replica (may be empty: every op then
        goes to the primary and the router is a transparent proxy).
    freshness_timeout:
        How long a partitioned read will wait for its replica to apply the
        read-your-writes bound before falling back to the primary.
    """

    def __init__(
        self,
        primary: Tuple[str, int],
        replicas: List[Tuple[str, int]],
        host: str = "127.0.0.1",
        port: int = 0,
        freshness_timeout: float = 5.0,
        reconnect: Optional[ReconnectPolicy] = None,
    ):
        self._primary_addr = primary
        self._replica_addrs = list(replicas)
        self._host = host
        self._port = port
        self.freshness_timeout = freshness_timeout
        self._reconnect = reconnect or ReconnectPolicy()
        self._primary: Optional[ServiceClient] = None
        self._replicas: List[ServiceClient] = []
        self.shard_seconds: Optional[float] = None
        #: The read-your-writes bound: the last commit seq routed through us.
        self.last_write_seq = 0
        #: Last known applied seq per replica (refreshed on demand).
        self._applied: List[int] = []
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        self._conn_tasks: set = set()
        self._request_tasks: set = set()
        self._stopped = False
        #: Router subscription id -> (replica index, backend sub id, conn).
        self._subscriptions: Dict[int, Tuple[int, int, _RouterConnection]] = {}
        #: (replica index, backend sub id) -> router subscription id.
        self._sub_by_backend: Dict[Tuple[int, int], int] = {}
        self._next_sub_id = 1
        self.stats: Dict[str, object] = {
            "writes": 0,
            "reads": 0,
            "reads_by_backend": [],
            "primary_fallbacks": 0,
            "stale_waits": 0,
            "pushes_relayed": 0,
            "subscriptions": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        if self._server is not None:
            raise RuntimeError("router already started")
        self._primary = await ServiceClient.connect(
            *self._primary_addr, reconnect=self._reconnect
        )
        self._primary.on_push = lambda frame: self._relay_push(-1, frame)
        status = await self._primary.replica_status()
        self.shard_seconds = float(status.get("shard_seconds") or 1.0)
        self.last_write_seq = int(status.get("last_seq") or 0)
        for index, address in enumerate(self._replica_addrs):
            client = await ServiceClient.connect(
                *address, reconnect=self._reconnect
            )
            client.on_push = lambda frame, i=index: self._relay_push(i, frame)
            self._replicas.append(client)
            self._applied.append(0)
        self.stats["reads_by_backend"] = [0] * (len(self._replicas) + 1)
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=protocol.MAX_FRAME_BYTES,
        )
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def stop(self) -> None:
        if self._stopped or self._server is None:
            return
        self._stopped = True
        self._server.close()
        await self._server.wait_closed()
        for task in list(self._request_tasks):
            task.cancel()
        for connection in list(self._connections):
            self._connections.discard(connection)
            await connection.flush_and_close()
        for task in list(self._conn_tasks):
            task.cancel()
        await self._primary.close()
        for client in self._replicas:
            await client.close()

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _RouterConnection(writer)
        self._connections.add(connection)
        connection.writer_task = asyncio.ensure_future(connection.run_writer())
        self._conn_tasks.add(asyncio.current_task())
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, ValueError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    frame = protocol.decode_frame(line.rstrip(b"\n"))
                    if protocol.BIN_LENGTH in frame:
                        need = protocol.binary_length(
                            frame, protocol.MAX_FRAME_BYTES
                        )
                        frame[protocol.BIN_PAYLOAD] = await reader.readexactly(
                            need
                        )
                except asyncio.IncompleteReadError:
                    break
                except ProtocolError as error:
                    connection.send_frame(
                        protocol.error_frame(None, error.kind, str(error))
                    )
                    continue
                task = asyncio.ensure_future(
                    self._serve_request(connection, frame)
                )
                self._request_tasks.add(task)
                task.add_done_callback(self._request_tasks.discard)
        finally:
            await self._cleanup_connection(connection)
            self._conn_tasks.discard(asyncio.current_task())

    async def _cleanup_connection(self, connection: _RouterConnection) -> None:
        if connection not in self._connections:
            return
        self._connections.discard(connection)
        for sub_id in list(connection.subscriptions):
            entry = self._subscriptions.pop(sub_id, None)
            if entry is None:
                continue
            index, backend_id, _conn = entry
            self._sub_by_backend.pop((index, backend_id), None)
            client = self._primary if index < 0 else self._replicas[index]
            try:
                await client.request("unsubscribe", subscription=backend_id)
            except (ServiceError, ConnectionError):
                pass
        connection.subscriptions.clear()
        await connection.flush_and_close()

    # ------------------------------------------------------------------
    # Request routing
    # ------------------------------------------------------------------
    async def _serve_request(
        self, connection: _RouterConnection, frame: dict
    ) -> None:
        request_id = frame.get("id")
        try:
            op = frame.get("op")
            if not isinstance(op, str):
                raise ProtocolError("bad_request", "missing or invalid 'op'")
            result = await self._route(connection, op, frame)
            response = protocol.response_frame(request_id, result)
        except ProtocolError as error:
            response = protocol.error_frame(request_id, error.kind, str(error))
        except ServiceError as error:
            response = protocol.error_frame(
                request_id, error.kind, error.message, **error.details
            )
        except ConnectionError as error:
            response = protocol.error_frame(
                request_id, "unavailable", f"backend unreachable: {error}"
            )
        except asyncio.CancelledError:
            raise
        except Exception as error:  # noqa: BLE001 - the router must not die
            response = protocol.error_frame(request_id, "internal", str(error))
        connection.send_frame(response)

    def _forward_fields(self, frame: dict) -> dict:
        """The request fields to re-issue (correlation id and op stripped)."""
        fields = {
            key: value
            for key, value in frame.items()
            if key not in ("id", "op", protocol.BIN_LENGTH)
        }
        return fields

    async def _route(
        self, connection: _RouterConnection, op: str, frame: dict
    ):
        if op in WRITE_OPS:
            return await self._route_write(op, frame)
        if op in PARTITIONED_READ_OPS:
            return await self._route_read(op, frame)
        if op == "subscribe":
            return await self._route_subscribe(connection, frame)
        if op == "unsubscribe":
            return await self._route_unsubscribe(connection, frame)
        if op == "ping":
            return {"pong": True, "role": "router"}
        if op == "stats" or op == "replica_status":
            return await self._router_status()
        raise ProtocolError(
            "bad_request", f"the router does not serve op {op!r}"
        )

    async def _route_write(self, op: str, frame: dict):
        result = await self._primary.request(op, **self._forward_fields(frame))
        self.stats["writes"] += 1
        if isinstance(result, dict) and "seq" in result:
            self.last_write_seq = max(self.last_write_seq, int(result["seq"]))
        return result

    # ------------------------------------------------------------------
    # Partitioned reads
    # ------------------------------------------------------------------
    def _partition_for(self, frame: dict) -> Optional[int]:
        """The replica index owning this query's time partition.

        ``None`` when there are no replicas (or no usable window): the
        primary serves it.
        """
        if not self._replicas:
            return None
        start = frame.get("start")
        if start is None:
            queries = frame.get("queries")
            if isinstance(queries, list) and queries:
                first = queries[0]
                if isinstance(first, dict):
                    start = first.get("start")
        try:
            start = float(start)
        except (TypeError, ValueError):
            return None
        shard = int(start // float(self.shard_seconds))
        return shard % len(self._replicas)

    def _backend(self, index: Optional[int]) -> ServiceClient:
        return self._primary if index is None else self._replicas[index]

    async def _route_read(self, op: str, frame: dict):
        index = self._partition_for(frame)
        if index is not None and not await self._ensure_fresh(index):
            self.stats["primary_fallbacks"] += 1
            index = None
        fields = self._forward_fields(frame)
        try:
            result = await self._backend(index).request(op, **fields)
        except (ServiceError, ConnectionError):
            if index is None:
                raise
            # A replica mid-restart (or freshly dead): the primary still
            # holds the full table — degrade to primary load, not to errors.
            self.stats["primary_fallbacks"] += 1
            index = None
            result = await self._primary.request(op, **fields)
        self.stats["reads"] += 1
        self.stats["reads_by_backend"][
            0 if index is None else index + 1
        ] += 1
        return result

    async def _ensure_fresh(self, index: int) -> bool:
        """Wait (bounded) until replica ``index`` has applied every write
        routed through us; ``False`` sends the read to the primary."""
        target = self.last_write_seq
        if self._applied[index] >= target:
            return True
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.freshness_timeout
        waited = False
        while True:
            try:
                status = await self._replicas[index].replica_status()
            except (ServiceError, ConnectionError):
                return False
            applied = int(status.get("applied_seq") or 0)
            self._applied[index] = max(self._applied[index], applied)
            # The bound may have advanced while we polled; honour the
            # freshest one so a fallback decision is never optimistic.
            target = self.last_write_seq
            if self._applied[index] >= target:
                if waited:
                    self.stats["stale_waits"] += 1
                return True
            if loop.time() >= deadline:
                return False
            waited = True
            await asyncio.sleep(0.005)

    # ------------------------------------------------------------------
    # Subscriptions (forwarded with id translation, pushes relayed)
    # ------------------------------------------------------------------
    async def _route_subscribe(
        self, connection: _RouterConnection, frame: dict
    ):
        if "resume" in frame:
            raise ProtocolError(
                "bad_request",
                "resume is not routable: re-subscribe through the router",
            )
        index = self._partition_for(frame)
        if index is not None and not await self._ensure_fresh(index):
            self.stats["primary_fallbacks"] += 1
            index = None
        result = await self._backend(index).request(
            "subscribe", **self._forward_fields(frame)
        )
        backend_id = int(result["subscription"])
        router_id = self._next_sub_id
        self._next_sub_id += 1
        backend_index = -1 if index is None else index
        self._subscriptions[router_id] = (backend_index, backend_id, connection)
        self._sub_by_backend[(backend_index, backend_id)] = router_id
        connection.subscriptions.add(router_id)
        self.stats["subscriptions"] += 1
        translated = dict(result)
        translated["subscription"] = router_id
        return translated

    async def _route_unsubscribe(
        self, connection: _RouterConnection, frame: dict
    ):
        try:
            router_id = int(frame["subscription"])
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(
                "bad_request", "missing or invalid 'subscription'"
            ) from error
        entry = self._subscriptions.pop(router_id, None)
        if entry is None:
            return {"unsubscribed": False}
        index, backend_id, owner = entry
        self._sub_by_backend.pop((index, backend_id), None)
        owner.subscriptions.discard(router_id)
        client = self._primary if index < 0 else self._replicas[index]
        return await client.request("unsubscribe", subscription=backend_id)

    def _relay_push(self, index: int, frame: dict) -> None:
        """Relay one backend push to the router client owning the
        subscription (runs on the event loop via the client read loop)."""
        backend_id = frame.get("subscription")
        if backend_id is None:
            return
        router_id = self._sub_by_backend.get((index, int(backend_id)))
        if router_id is None:
            return
        entry = self._subscriptions.get(router_id)
        if entry is None:
            return
        _index, _backend_id, connection = entry
        translated = dict(frame)
        translated["subscription"] = router_id
        connection.send_frame(translated)
        self.stats["pushes_relayed"] += 1

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    async def _router_status(self) -> dict:
        backends = []
        for index, client in enumerate([self._primary] + self._replicas):
            try:
                status = await client.request("replica_status")
            except (ServiceError, ConnectionError) as error:
                status = {"error": str(error)}
            backends.append(status)
        return {
            "role": "router",
            "shard_seconds": self.shard_seconds,
            "last_write_seq": self.last_write_seq,
            "replicas": len(self._replicas),
            "router": dict(self.stats),
            "backends": backends,
        }
