"""The query service layer: the engine behind a wire protocol.

After PRs 1-3 every capability — the staged execution engine, the sharded
store, continuous queries — was only reachable in-process.  This package is
the network-facing layer a production deployment needs:

* :mod:`~repro.service.protocol` — the newline-delimited JSON wire protocol
  (requests, structured errors, subscription push frames, record/query/result
  serialisation with bit-exact float round-trips);
* :mod:`~repro.service.server` — :class:`QueryService`, the asyncio server
  multiplexing many client connections onto one shared
  :class:`~repro.engine.runtime.QueryEngine`, running CPU-bound work on a
  worker pool off the event loop and pushing continuous-query refreshes to
  subscribed connections;
* :mod:`~repro.service.admission` — :class:`AdmissionController`, bounded
  in-flight work, per-client token-bucket rate limits, graceful drain;
* :mod:`~repro.service.metrics` — :class:`ServiceMetrics`, per-op latency
  histograms and counters behind the ``stats`` operation;
* :mod:`~repro.service.client` — the sans-I/O :class:`ClientCore` and the
  asyncio :class:`ServiceClient` / :class:`RemoteSubscription`, with bounded
  reconnect-with-backoff (:class:`ReconnectPolicy`);
* :mod:`~repro.service.replica` — :class:`ReadReplica`, a WAL-shipping
  follower that catches up (snapshot or replay), tails the primary's
  commits as binary ``RPK1`` frames, and serves reads from its own
  read-only service;
* :mod:`~repro.service.router` — :class:`PartitionRouter`, a front door
  fanning writes to the primary and routing reads across replicas by
  time-partition affinity with a read-your-writes staleness bound;
* :mod:`~repro.service.topology` — the CLI entrypoint running one topology
  role per process (``python -m repro.service.topology``).

Everything is standard-library only (``asyncio``, ``json``, ``threading``).
"""

from .admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionStats,
    REASON_CAPACITY,
    REASON_DRAINING,
    REASON_RATE,
)
from .client import (
    ClientCore,
    ReconnectPolicy,
    RemoteSubscription,
    ServiceClient,
    ServiceError,
)
from .metrics import LatencyHistogram, ServiceMetrics
from .protocol import (
    ERROR_KINDS,
    FrameAssembler,
    FrameSplitter,
    MUTATING_OPS,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    READ_ONLY_OPS,
    SUBSCRIPTION_KINDS,
    decode_frame,
    encode_frame,
    error_frame,
    flows_from_wire,
    flows_to_wire,
    query_from_wire,
    receipt_to_wire,
    record_from_wire,
    record_to_wire,
    records_from_wire,
    records_to_wire,
    response_frame,
    result_to_wire,
)
from .replica import ReadReplica, ReplicaError
from .router import PartitionRouter
from .server import QueryService

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionStats",
    "ClientCore",
    "ERROR_KINDS",
    "FrameAssembler",
    "FrameSplitter",
    "LatencyHistogram",
    "MUTATING_OPS",
    "OPS",
    "PROTOCOL_VERSION",
    "PartitionRouter",
    "ProtocolError",
    "QueryService",
    "READ_ONLY_OPS",
    "REASON_CAPACITY",
    "REASON_DRAINING",
    "REASON_RATE",
    "ReadReplica",
    "ReconnectPolicy",
    "RemoteSubscription",
    "ReplicaError",
    "SUBSCRIPTION_KINDS",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "decode_frame",
    "encode_frame",
    "error_frame",
    "flows_from_wire",
    "flows_to_wire",
    "query_from_wire",
    "receipt_to_wire",
    "record_from_wire",
    "record_to_wire",
    "records_from_wire",
    "records_to_wire",
    "response_frame",
    "result_to_wire",
]
