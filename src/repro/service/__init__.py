"""The query service layer: the engine behind a wire protocol.

After PRs 1-3 every capability — the staged execution engine, the sharded
store, continuous queries — was only reachable in-process.  This package is
the network-facing layer a production deployment needs:

* :mod:`~repro.service.protocol` — the newline-delimited JSON wire protocol
  (requests, structured errors, subscription push frames, record/query/result
  serialisation with bit-exact float round-trips);
* :mod:`~repro.service.server` — :class:`QueryService`, the asyncio server
  multiplexing many client connections onto one shared
  :class:`~repro.engine.runtime.QueryEngine`, running CPU-bound work on a
  worker pool off the event loop and pushing continuous-query refreshes to
  subscribed connections;
* :mod:`~repro.service.admission` — :class:`AdmissionController`, bounded
  in-flight work, per-client token-bucket rate limits, graceful drain;
* :mod:`~repro.service.metrics` — :class:`ServiceMetrics`, per-op latency
  histograms and counters behind the ``stats`` operation;
* :mod:`~repro.service.client` — the sans-I/O :class:`ClientCore` and the
  asyncio :class:`ServiceClient` / :class:`RemoteSubscription`.

Everything is standard-library only (``asyncio``, ``json``, ``threading``).
"""

from .admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionStats,
    REASON_CAPACITY,
    REASON_DRAINING,
    REASON_RATE,
)
from .client import ClientCore, RemoteSubscription, ServiceClient, ServiceError
from .metrics import LatencyHistogram, ServiceMetrics
from .protocol import (
    ERROR_KINDS,
    FrameSplitter,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    READ_ONLY_OPS,
    SUBSCRIPTION_KINDS,
    decode_frame,
    encode_frame,
    error_frame,
    flows_from_wire,
    flows_to_wire,
    query_from_wire,
    receipt_to_wire,
    record_from_wire,
    record_to_wire,
    records_from_wire,
    records_to_wire,
    response_frame,
    result_to_wire,
)
from .server import QueryService

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionStats",
    "ClientCore",
    "ERROR_KINDS",
    "FrameSplitter",
    "LatencyHistogram",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueryService",
    "READ_ONLY_OPS",
    "REASON_CAPACITY",
    "REASON_DRAINING",
    "REASON_RATE",
    "RemoteSubscription",
    "SUBSCRIPTION_KINDS",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "decode_frame",
    "encode_frame",
    "error_frame",
    "flows_from_wire",
    "flows_to_wire",
    "query_from_wire",
    "receipt_to_wire",
    "record_from_wire",
    "record_to_wire",
    "records_from_wire",
    "records_to_wire",
    "response_frame",
    "result_to_wire",
]
