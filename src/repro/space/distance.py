"""Indoor walking distances and shortest paths over the door graph.

The synthetic movement generator (Section 5.3: "an object moves towards its
destination along the shortest indoor path") needs door-to-door routing.  The
standard indoor routing model is used: movement between two points in the same
partition is a straight line, and movement across partitions goes door to
door.  The door graph has one node per door plus virtual nodes for the source
and target points; edges connect nodes that share a partition, weighted by
straight-line distance.

The implementation is a self-contained Dijkstra (binary heap) so the core
library carries no third-party dependencies.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..geometry import Point
from .floorplan import FloorPlan


@dataclass(frozen=True)
class IndoorRoute:
    """A routed indoor path: the sequence of waypoints and its total length."""

    waypoints: Tuple[Point, ...]
    length: float
    partitions: Tuple[int, ...]

    @property
    def hop_count(self) -> int:
        return max(len(self.waypoints) - 1, 0)


class DoorGraphRouter:
    """Shortest-path routing over a floor plan's door graph."""

    def __init__(self, plan: FloorPlan):
        if not plan.is_frozen:
            plan.freeze()
        self._plan = plan
        # door graph adjacency: door_id -> list of (door_id, weight, partition)
        self._adjacency: Dict[int, List[Tuple[int, float, int]]] = {
            door_id: [] for door_id in plan.doors
        }
        self._build_adjacency()

    def _build_adjacency(self) -> None:
        plan = self._plan
        for partition_id in plan.partitions:
            doors = plan.doors_of_partition(partition_id)
            for i, door_a in enumerate(doors):
                for door_b in doors[i + 1 :]:
                    weight = self._inner_distance(door_a.position, door_b.position)
                    self._adjacency[door_a.door_id].append(
                        (door_b.door_id, weight, partition_id)
                    )
                    self._adjacency[door_b.door_id].append(
                        (door_a.door_id, weight, partition_id)
                    )

    @staticmethod
    def _inner_distance(a: Point, b: Point) -> float:
        """Distance between two points inside one partition.

        Staircase partitions connect doors on different floors; a nominal
        vertical traversal cost (floor height 4 m plus planar offset) is used
        so that inter-floor routes are longer than same-floor ones.
        """
        if a.floor == b.floor:
            return a.distance_to(b)
        planar = math.hypot(a.x - b.x, a.y - b.y)
        return planar + 4.0 * abs(a.floor - b.floor)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def distance(self, source: Point, target: Point) -> float:
        """Shortest indoor walking distance between two points."""
        route = self.route(source, target)
        return route.length if route is not None else math.inf

    def route(self, source: Point, target: Point) -> Optional[IndoorRoute]:
        """Compute the shortest indoor route between two points.

        Returns ``None`` when no route exists (disconnected partitions).
        """
        plan = self._plan
        source_partition = plan.partition_containing(source)
        target_partition = plan.partition_containing(target)
        if source_partition is None or target_partition is None:
            return None
        if source_partition == target_partition:
            length = self._inner_distance(source, target)
            return IndoorRoute(
                waypoints=(source, target),
                length=length,
                partitions=(source_partition,),
            )

        # Dijkstra over door nodes, seeded from the doors of the source
        # partition, terminated at the doors of the target partition.
        source_doors = plan.doors_of_partition(source_partition)
        target_doors = {d.door_id for d in plan.doors_of_partition(target_partition)}
        if not source_doors or not target_doors:
            return None

        dist: Dict[int, float] = {}
        prev: Dict[int, Optional[int]] = {}
        heap: List[Tuple[float, int]] = []
        for door in source_doors:
            start_cost = self._inner_distance(source, door.position)
            if start_cost < dist.get(door.door_id, math.inf):
                dist[door.door_id] = start_cost
                prev[door.door_id] = None
                heapq.heappush(heap, (start_cost, door.door_id))

        best_target: Optional[int] = None
        best_cost = math.inf
        while heap:
            cost, door_id = heapq.heappop(heap)
            if cost > dist.get(door_id, math.inf):
                continue
            if door_id in target_doors:
                exit_cost = cost + self._inner_distance(
                    plan.doors[door_id].position, target
                )
                if exit_cost < best_cost:
                    best_cost = exit_cost
                    best_target = door_id
                # Other target doors may still be cheaper overall; keep going
                # until the frontier exceeds the best known total.
                if cost > best_cost:
                    break
            for neighbour, weight, _ in self._adjacency[door_id]:
                candidate = cost + weight
                if candidate < dist.get(neighbour, math.inf):
                    dist[neighbour] = candidate
                    prev[neighbour] = door_id
                    heapq.heappush(heap, (candidate, neighbour))

        if best_target is None:
            return None

        door_chain: List[int] = []
        cursor: Optional[int] = best_target
        while cursor is not None:
            door_chain.append(cursor)
            cursor = prev[cursor]
        door_chain.reverse()

        waypoints = [source] + [plan.doors[d].position for d in door_chain] + [target]
        partitions = self._partitions_along(source_partition, door_chain, target_partition)
        return IndoorRoute(
            waypoints=tuple(waypoints),
            length=best_cost,
            partitions=tuple(partitions),
        )

    def _partitions_along(
        self, source_partition: int, door_chain: Sequence[int], target_partition: int
    ) -> List[int]:
        """Reconstruct the partition sequence visited along a door chain."""
        partitions = [source_partition]
        current = source_partition
        for door_id in door_chain:
            door = self._plan.doors[door_id]
            if current in door.partition_ids:
                current = door.other_side(current)
            else:
                # The chain stepped through a partition shared with the
                # previous door; pick the side that is not the current one.
                current = door.partition_ids[0] if door.partition_ids[1] == current else door.partition_ids[1]
            partitions.append(current)
        if partitions[-1] != target_partition:
            partitions.append(target_partition)
        return partitions

    def reachable_partitions(self, start_partition: int) -> List[int]:
        """Return all partitions reachable from ``start_partition`` via doors."""
        plan = self._plan
        seen = {start_partition}
        frontier = [start_partition]
        while frontier:
            partition_id = frontier.pop()
            for door in plan.doors_of_partition(partition_id):
                other = door.other_side(partition_id)
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        return sorted(seen)
