"""The Indoor Location Matrix (MIL) of Section 3.1.2.

``MIL`` is conceptually an ``N x N`` upper-triangular matrix over the
P-locations:

* ``MIL[pi, pi]`` gives the cells adjacent to ``pi`` (for a partitioning
  P-location) or the cell containing it (for a presence P-location);
* ``MIL[pi, pj]`` gives the cells through which one can reach ``pj`` from
  ``pi`` without involving any other cell;
* ``MIL[pi, pj] = ∅`` when ``pi`` and ``pj`` share no cell.

We materialise the matrix sparsely as the intersection of the per-P-location
cell sets, which reproduces the worked example of Figure 3 (e.g.
``MIL[p4, p9] = {c1, c6}``, ``MIL[p3, p4] = ∅``).  Section 3.2's downsizing —
merging equivalent P-locations that label the same GISL edge into an
``M x M`` matrix where ``M`` is the number of graph edges — is exposed through
:meth:`IndoorLocationMatrix.merged`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .graph import IndoorSpaceLocationGraph

EMPTY_CELLS: FrozenSet[int] = frozenset()


@dataclass
class IndoorLocationMatrix:
    """Sparse view of the indoor location matrix.

    Parameters
    ----------
    cells_of:
        Per-P-location cell sets (``MIL[p, p]``).
    representative:
        Maps each P-location to its equivalence-class representative; the
        identity mapping for the un-merged matrix.
    """

    cells_of: Dict[int, FrozenSet[int]]
    representative: Dict[int, int]
    is_merged: bool = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: IndoorSpaceLocationGraph) -> "IndoorLocationMatrix":
        """Build the full (un-merged) matrix from an indoor space location graph."""
        cells_of = dict(graph.cells_of_plocation)
        representative = {ploc_id: ploc_id for ploc_id in cells_of}
        return cls(cells_of=cells_of, representative=representative, is_merged=False)

    def merged(self, graph: IndoorSpaceLocationGraph) -> "IndoorLocationMatrix":
        """Return the downsized M x M matrix of Section 3.2.

        Equivalent P-locations (those labelling the same GISL edge) collapse
        onto the representative with the smallest identifier.  Lookups through
        the merged matrix first map each P-location to its representative, so
        callers do not need to know whether merging happened.
        """
        representative: Dict[int, int] = {}
        cells_of: Dict[int, FrozenSet[int]] = {}
        for members in graph.edges.values():
            if not members:
                continue
            rep = min(members)
            for ploc_id in members:
                representative[ploc_id] = rep
            cells_of[rep] = graph.cells_of_plocation[rep]
        # P-locations that somehow do not appear on any edge keep themselves.
        for ploc_id, cell_set in self.cells_of.items():
            representative.setdefault(ploc_id, ploc_id)
            cells_of.setdefault(representative[ploc_id], cell_set)
        return IndoorLocationMatrix(
            cells_of=cells_of, representative=representative, is_merged=True
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def resolve(self, ploc_id: int) -> int:
        """Map a P-location to the row/column actually stored in the matrix."""
        return self.representative.get(ploc_id, ploc_id)

    def cells_adjacent(self, ploc_id: int) -> FrozenSet[int]:
        """``MIL[p, p]``: adjacent / containing cells of ``p``."""
        return self.cells_of.get(self.resolve(ploc_id), EMPTY_CELLS)

    def cells_between(self, ploc_a: int, ploc_b: int) -> FrozenSet[int]:
        """``MIL[pa, pb]``: the cells directly connecting the two P-locations."""
        cells_a = self.cells_adjacent(ploc_a)
        if not cells_a:
            return EMPTY_CELLS
        cells_b = self.cells_adjacent(ploc_b)
        if not cells_b:
            return EMPTY_CELLS
        return cells_a & cells_b

    def connected(self, ploc_a: int, ploc_b: int) -> bool:
        """Whether ``MIL[pa, pb]`` is non-empty (a direct move is possible)."""
        return bool(self.cells_between(ploc_a, ploc_b))

    def equivalent(self, ploc_a: int, ploc_b: int) -> bool:
        """Whether two P-locations are equivalent (identical cell sets)."""
        return self.cells_adjacent(ploc_a) == self.cells_adjacent(ploc_b)

    def plocation_ids(self) -> List[int]:
        """The P-locations (or representatives, if merged) stored in the matrix."""
        return sorted(self.cells_of)

    # ------------------------------------------------------------------
    # Dimensionality / statistics
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """The number of rows (N for the raw matrix, M ≤ N when merged)."""
        return len(self.cells_of)

    def nonempty_pairs(self) -> int:
        """Count the non-empty upper-triangular entries (including diagonal).

        Quadratic in the stored dimension; intended for diagnostics and the
        matrix ablation benchmark, not for the query hot path.
        """
        ids = self.plocation_ids()
        count = 0
        for i, a in enumerate(ids):
            for b in ids[i:]:
                if self.cells_of[a] & self.cells_of[b]:
                    count += 1
        return count

    def dense(self) -> Dict[Tuple[int, int], FrozenSet[int]]:
        """Materialise the upper-triangular matrix as a dictionary.

        Only intended for small spaces (tests reproducing Figure 3); large
        deployments should use :meth:`cells_between` directly.
        """
        ids = self.plocation_ids()
        matrix: Dict[Tuple[int, int], FrozenSet[int]] = {}
        for i, a in enumerate(ids):
            for b in ids[i:]:
                matrix[(a, b)] = self.cells_of[a] & self.cells_of[b]
        return matrix

    def summary(self) -> Dict[str, int]:
        return {
            "dimension": self.dimension,
            "merged": int(self.is_merged),
            "plocations_mapped": len(self.representative),
        }


def possible_cells_of_sequence(
    matrix: IndoorLocationMatrix, ploc_ids: Iterable[int]
) -> Set[int]:
    """Union of adjacent cells over the P-locations of a positioning sequence.

    Used by the data reduction (Algorithm 1, line 6) to derive an object's
    possible semantic locations: every cell a reported P-location touches may
    have been visited, so the union bounds the object's whereabouts.
    """
    cells: Set[int] = set()
    for ploc_id in ploc_ids:
        cells |= matrix.cells_adjacent(ploc_id)
    return cells
