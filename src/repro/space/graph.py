"""The Indoor Space Location Graph (GISL) of Section 3.1.1.

``GISL = (C, E, le)`` where the vertices ``C`` are the indoor cells, the edges
``E`` connect cells an object can move between directly, and the labelling
``le`` maps an edge to the set of P-locations witnessing that movement:

* a non-loop edge ``<ci, cj>`` is labelled with the partitioning P-locations
  whose doors divide ``ci`` from ``cj``;
* a loop edge ``<ci, ci>`` is labelled with the presence P-locations fully
  covered by ``ci``.

The graph also carries the two mappings the paper uses to bridge cells and
semantic locations: ``C2S`` (cell -> S-locations it contains) and ``Cell``
(S-location -> parent cell).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .cells import derive_cells, partition_to_cell
from .entities import Cell, PLocation
from .floorplan import FloorPlan


EdgeKey = Tuple[int, int]


def _edge_key(cell_a: int, cell_b: int) -> EdgeKey:
    """Normalise an undirected edge key (loops allowed)."""
    return (cell_a, cell_b) if cell_a <= cell_b else (cell_b, cell_a)


@dataclass
class IndoorSpaceLocationGraph:
    """The indoor space location graph plus the C2S / Cell mappings.

    Build one with :meth:`from_floorplan`; the constructor fields are exposed
    for tests that want to assemble a graph by hand.
    """

    plan: FloorPlan
    cells: Dict[int, Cell]
    edges: Dict[EdgeKey, Set[int]]
    cell_of_partition: Dict[int, int]
    cells_of_plocation: Dict[int, FrozenSet[int]]
    cell_to_slocations: Dict[int, Set[int]] = field(default_factory=dict)
    slocation_to_cell: Dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_floorplan(cls, plan: FloorPlan) -> "IndoorSpaceLocationGraph":
        """Derive cells, edges, labels, and the S-location mappings from a plan."""
        if not plan.is_frozen:
            plan.freeze()
        cell_list = derive_cells(plan)
        cells = {cell.cell_id: cell for cell in cell_list}
        cell_of_partition = partition_to_cell(cell_list)

        edges: Dict[EdgeKey, Set[int]] = {}
        cells_of_plocation: Dict[int, FrozenSet[int]] = {}

        for ploc in plan.plocations.values():
            adjacent = cls._adjacent_cells(plan, ploc, cell_of_partition)
            cells_of_plocation[ploc.ploc_id] = adjacent
            key = cls._edge_for_cells(adjacent)
            edges.setdefault(key, set()).add(ploc.ploc_id)

        graph = cls(
            plan=plan,
            cells=cells,
            edges=edges,
            cell_of_partition=cell_of_partition,
            cells_of_plocation=cells_of_plocation,
        )
        graph._assign_slocations()
        return graph

    @staticmethod
    def _adjacent_cells(
        plan: FloorPlan, ploc: PLocation, cell_of_partition: Dict[int, int]
    ) -> FrozenSet[int]:
        """Return the cell set a P-location gives access to.

        Partitioning P-locations sit at a door and are adjacent to the cells
        on both sides; presence P-locations are covered by the single cell of
        their containing partition.  A partitioning P-location whose door ends
        up internal to one cell (because another unguarded door already joins
        the two sides) degenerates to a single-cell set, which is handled
        uniformly downstream.
        """
        if ploc.is_presence:
            assert ploc.partition_id is not None
            return frozenset({cell_of_partition[ploc.partition_id]})
        assert ploc.door_id is not None
        door = plan.doors[ploc.door_id]
        return frozenset(cell_of_partition[pid] for pid in door.partition_ids)

    @staticmethod
    def _edge_for_cells(adjacent: FrozenSet[int]) -> EdgeKey:
        cells = sorted(adjacent)
        if len(cells) == 1:
            return _edge_key(cells[0], cells[0])
        return _edge_key(cells[0], cells[1])

    def _assign_slocations(self) -> None:
        """Populate ``C2S`` and ``Cell`` for every S-location in the plan.

        An S-location is assigned to the parent cell of the partition that
        contains its region centre (the paper assumes an S-location has a
        single parent cell).  If the centre falls outside every partition
        (possible for hand-drawn regions), the cell with the largest region
        overlap is used instead.
        """
        self.cell_to_slocations = {cell_id: set() for cell_id in self.cells}
        self.slocation_to_cell = {}
        for sloc in self.plan.slocations.values():
            cell_id = self._parent_cell_of_region(sloc.region)
            if cell_id is None:
                continue
            self.slocation_to_cell[sloc.sloc_id] = cell_id
            self.cell_to_slocations[cell_id].add(sloc.sloc_id)

    def _parent_cell_of_region(self, region) -> Optional[int]:
        partition_id = self.plan.partition_containing(region.center)
        if partition_id is not None:
            return self.cell_of_partition[partition_id]
        best_cell: Optional[int] = None
        best_overlap = 0.0
        for cell in self.cells.values():
            overlap = sum(
                self.plan.partitions[pid].rect.intersection_area(region)
                for pid in cell.partition_ids
            )
            if overlap > best_overlap:
                best_overlap = overlap
                best_cell = cell.cell_id
        return best_cell

    # ------------------------------------------------------------------
    # The paper's mappings
    # ------------------------------------------------------------------
    def c2s(self, cell_id: int) -> Set[int]:
        """``C2S``: the S-locations contained by ``cell_id``."""
        return set(self.cell_to_slocations.get(cell_id, set()))

    def c2s_many(self, cell_ids) -> Set[int]:
        """Union of ``C2S`` over a collection of cells."""
        result: Set[int] = set()
        for cell_id in cell_ids:
            result |= self.cell_to_slocations.get(cell_id, set())
        return result

    def parent_cell(self, sloc_id: int) -> Optional[int]:
        """``Cell``: the parent cell of S-location ``sloc_id``."""
        return self.slocation_to_cell.get(sloc_id)

    def cells_of(self, ploc_id: int) -> FrozenSet[int]:
        """The cell set adjacent to / containing P-location ``ploc_id``."""
        return self.cells_of_plocation[ploc_id]

    # ------------------------------------------------------------------
    # Graph structure accessors
    # ------------------------------------------------------------------
    @property
    def vertex_count(self) -> int:
        return len(self.cells)

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def edge_label(self, cell_a: int, cell_b: int) -> Set[int]:
        """``le``: the P-locations labelling edge ``<cell_a, cell_b>``."""
        return set(self.edges.get(_edge_key(cell_a, cell_b), set()))

    def neighbours(self, cell_id: int) -> Set[int]:
        """Cells directly reachable from ``cell_id`` (excluding itself)."""
        result: Set[int] = set()
        for (a, b) in self.edges:
            if a == cell_id and b != cell_id:
                result.add(b)
            elif b == cell_id and a != cell_id:
                result.add(a)
        return result

    def equivalence_classes(self) -> List[FrozenSet[int]]:
        """Group P-locations into equivalence classes (Section 3.2).

        Two P-locations are equivalent (``pi ≡ pj``) when they label the same
        GISL edge, i.e. they connect / witness exactly the same cell set and
        are therefore interchangeable when searching the indoor location
        matrix.  The classes drive both the matrix downsizing and the
        intra-merge step of the data reduction.
        """
        return [frozenset(plocs) for plocs in self.edges.values()]

    def representative_plocation(self, ploc_id: int) -> int:
        """Return the class representative (smallest id) for ``ploc_id``."""
        key = self._edge_for_cells(self.cells_of_plocation[ploc_id])
        members = self.edges.get(key)
        if not members:
            return ploc_id
        return min(members)

    def summary(self) -> Dict[str, int]:
        """Structural counts used in docs and sanity tests."""
        loop_edges = sum(1 for (a, b) in self.edges if a == b)
        return {
            "cells": self.vertex_count,
            "edges": self.edge_count,
            "loop_edges": loop_edges,
            "plocations": len(self.cells_of_plocation),
            "slocations": len(self.slocation_to_cell),
        }
