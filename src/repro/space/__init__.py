"""Indoor space model: entities, floor plans, cells, GISL, MIL, routing."""

from .cells import derive_cells, partition_to_cell
from .distance import DoorGraphRouter, IndoorRoute
from .entities import (
    Cell,
    Door,
    Partition,
    PartitionKind,
    PLocation,
    PLocationKind,
    SLocation,
)
from .floorplan import FloorPlan, FloorPlanError
from .graph import IndoorSpaceLocationGraph
from .matrix import IndoorLocationMatrix, possible_cells_of_sequence

__all__ = [
    "Cell",
    "Door",
    "DoorGraphRouter",
    "FloorPlan",
    "FloorPlanError",
    "IndoorLocationMatrix",
    "IndoorRoute",
    "IndoorSpaceLocationGraph",
    "Partition",
    "PartitionKind",
    "PLocation",
    "PLocationKind",
    "SLocation",
    "derive_cells",
    "partition_to_cell",
    "possible_cells_of_sequence",
]
