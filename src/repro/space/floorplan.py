"""The floor plan: the container for all indoor space entities.

A :class:`FloorPlan` holds the partitions, doors, P-locations, and S-locations
of a building (single- or multi-floor) and offers geometric lookups backed by
an in-memory R-tree, mirroring how the paper stores "the entities including
S-locations, P-locations, and doors" in an R-tree to "facilitate the
geometrical computation for determining the topological relationships".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..geometry import Point, Rect
from ..indexes import RTree
from .entities import (
    Door,
    Partition,
    PartitionKind,
    PLocation,
    PLocationKind,
    SLocation,
)


class FloorPlanError(ValueError):
    """Raised when a floor plan is built or queried inconsistently."""


class FloorPlan:
    """A mutable builder + read model for an indoor space.

    Typical usage::

        plan = FloorPlan()
        r1 = plan.add_partition(Rect(0, 0, 5, 5), kind=PartitionKind.ROOM, name="r1")
        ...
        plan.add_door(Point(5, 2.5), (r1, r6))
        plan.add_partitioning_plocation(Point(5, 2.5), door_id=0)
        plan.add_presence_plocation(Point(2, 2), partition_id=r1)
        plan.add_slocation(Rect(0, 0, 5, 5), name="room 1")
        plan.freeze()

    ``freeze`` validates the plan and builds the geometric indexes; mutation
    after freezing raises.
    """

    def __init__(self) -> None:
        self.partitions: Dict[int, Partition] = {}
        self.doors: Dict[int, Door] = {}
        self.plocations: Dict[int, PLocation] = {}
        self.slocations: Dict[int, SLocation] = {}
        self._frozen = False
        self._partition_index: Optional[RTree] = None
        self._slocation_index: Optional[RTree] = None
        self._doors_by_partition: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Builder API
    # ------------------------------------------------------------------
    def add_partition(
        self,
        rect: Rect,
        kind: PartitionKind = PartitionKind.ROOM,
        name: str = "",
    ) -> int:
        """Register a partition and return its identifier."""
        self._ensure_mutable()
        partition_id = len(self.partitions)
        self.partitions[partition_id] = Partition(partition_id, rect, kind, name)
        return partition_id

    def add_door(self, position: Point, partition_ids: Tuple[int, int], name: str = "") -> int:
        """Register a door between two existing partitions and return its id."""
        self._ensure_mutable()
        for pid in partition_ids:
            if pid not in self.partitions:
                raise FloorPlanError(f"door references unknown partition {pid}")
        door_id = len(self.doors)
        self.doors[door_id] = Door(door_id, position, tuple(partition_ids), name)
        return door_id

    def add_partitioning_plocation(
        self, position: Point, door_id: int, name: str = ""
    ) -> int:
        """Register a partitioning P-location guarding ``door_id``."""
        self._ensure_mutable()
        if door_id not in self.doors:
            raise FloorPlanError(f"P-location references unknown door {door_id}")
        ploc_id = len(self.plocations)
        self.plocations[ploc_id] = PLocation(
            ploc_id, position, PLocationKind.PARTITIONING, door_id=door_id, name=name
        )
        return ploc_id

    def add_presence_plocation(
        self, position: Point, partition_id: Optional[int] = None, name: str = ""
    ) -> int:
        """Register a presence P-location inside ``partition_id``.

        If ``partition_id`` is omitted the containing partition is resolved
        geometrically, which requires the partitions added so far to cover the
        position.
        """
        self._ensure_mutable()
        if partition_id is None:
            partition_id = self._resolve_partition(position)
        if partition_id not in self.partitions:
            raise FloorPlanError(f"P-location references unknown partition {partition_id}")
        ploc_id = len(self.plocations)
        self.plocations[ploc_id] = PLocation(
            ploc_id, position, PLocationKind.PRESENCE, partition_id=partition_id, name=name
        )
        return ploc_id

    def add_slocation(self, region: Rect, name: str = "") -> int:
        """Register a semantic location and return its identifier."""
        self._ensure_mutable()
        sloc_id = len(self.slocations)
        self.slocations[sloc_id] = SLocation(sloc_id, region, name)
        return sloc_id

    def add_slocation_for_partition(self, partition_id: int, name: str = "") -> int:
        """Register an S-location coinciding with an existing partition."""
        partition = self.partitions.get(partition_id)
        if partition is None:
            raise FloorPlanError(f"unknown partition {partition_id}")
        return self.add_slocation(partition.rect, name or partition.label())

    def freeze(self) -> "FloorPlan":
        """Validate the plan and build the geometric indexes.  Returns ``self``."""
        if self._frozen:
            return self
        self._validate()
        self._partition_index = RTree.bulk_load(
            (p.rect, p.partition_id) for p in self.partitions.values()
        )
        self._slocation_index = RTree.bulk_load(
            (s.region, s.sloc_id) for s in self.slocations.values()
        )
        self._doors_by_partition = {pid: [] for pid in self.partitions}
        for door in self.doors.values():
            for pid in door.partition_ids:
                self._doors_by_partition[pid].append(door.door_id)
        self._frozen = True
        return self

    @property
    def is_frozen(self) -> bool:
        return self._frozen

    def _ensure_mutable(self) -> None:
        if self._frozen:
            raise FloorPlanError("the floor plan has been frozen and cannot be modified")

    def _validate(self) -> None:
        if not self.partitions:
            raise FloorPlanError("a floor plan needs at least one partition")
        for door in self.doors.values():
            floors = {self.partitions[p].floor for p in door.partition_ids}
            staircase = any(
                self.partitions[p].kind is PartitionKind.STAIRCASE
                for p in door.partition_ids
            )
            if len(floors) > 1 and not staircase:
                raise FloorPlanError(
                    f"door {door.door_id} crosses floors without a staircase partition"
                )
        for ploc in self.plocations.values():
            if ploc.is_presence and ploc.partition_id not in self.partitions:
                raise FloorPlanError(
                    f"presence P-location {ploc.ploc_id} references unknown partition"
                )
            if ploc.is_partitioning and ploc.door_id not in self.doors:
                raise FloorPlanError(
                    f"partitioning P-location {ploc.ploc_id} references unknown door"
                )

    # ------------------------------------------------------------------
    # Geometric / topological lookups
    # ------------------------------------------------------------------
    def _resolve_partition(self, point: Point) -> int:
        for partition in self.partitions.values():
            if partition.contains(point):
                return partition.partition_id
        raise FloorPlanError(f"no partition contains point {point}")

    def partition_containing(self, point: Point) -> Optional[int]:
        """Return the id of the partition containing ``point``, if any."""
        if self._partition_index is not None:
            hits = self._partition_index.search_point(point)
            return min(hits) if hits else None
        for partition in self.partitions.values():
            if partition.contains(point):
                return partition.partition_id
        return None

    def slocations_containing(self, point: Point) -> List[int]:
        """Return the ids of all S-locations whose region contains ``point``."""
        if self._slocation_index is not None:
            return sorted(self._slocation_index.search_point(point))
        return sorted(
            s.sloc_id for s in self.slocations.values() if s.contains(point)
        )

    def slocations_intersecting(self, window: Rect) -> List[int]:
        """Return the ids of all S-locations whose region intersects ``window``."""
        if self._slocation_index is not None:
            return sorted(self._slocation_index.search(window))
        return sorted(
            s.sloc_id for s in self.slocations.values() if s.region.intersects(window)
        )

    def doors_of_partition(self, partition_id: int) -> List[Door]:
        """Return the doors incident to ``partition_id``."""
        if self._frozen:
            return [self.doors[d] for d in self._doors_by_partition.get(partition_id, [])]
        return [d for d in self.doors.values() if partition_id in d.partition_ids]

    def partitioning_plocations_at_door(self, door_id: int) -> List[PLocation]:
        """Return the partitioning P-locations guarding ``door_id``."""
        return [
            p
            for p in self.plocations.values()
            if p.is_partitioning and p.door_id == door_id
        ]

    def presence_plocations_in_partition(self, partition_id: int) -> List[PLocation]:
        """Return the presence P-locations inside ``partition_id``."""
        return [
            p
            for p in self.plocations.values()
            if p.is_presence and p.partition_id == partition_id
        ]

    def plocations_near(self, point: Point, radius: float) -> List[PLocation]:
        """Return P-locations within ``radius`` metres of ``point`` (same floor)."""
        return [
            p
            for p in self.plocations.values()
            if p.position.distance_to(point) <= radius
        ]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def floors(self) -> List[int]:
        """The sorted list of floor numbers present in the plan."""
        return sorted({p.floor for p in self.partitions.values()})

    def summary(self) -> Dict[str, int]:
        """Return entity counts, handy for logging and DESIGN/EXPERIMENTS docs."""
        partitioning = sum(1 for p in self.plocations.values() if p.is_partitioning)
        return {
            "partitions": len(self.partitions),
            "doors": len(self.doors),
            "plocations": len(self.plocations),
            "partitioning_plocations": partitioning,
            "presence_plocations": len(self.plocations) - partitioning,
            "slocations": len(self.slocations),
            "floors": len(self.floors),
        }
