"""Cell derivation from partitions and partitioning P-locations.

Section 2.1 of the paper: "A set of partitioning P-locations altogether
partition the indoor space into cells in that an object cannot move from one
cell to another without passing one of these P-locations."  A cell is an
indoor partition or a combination of adjacent partitions (footnote 1).

Equivalently: merge partitions connected through *unguarded* doors (doors that
host no partitioning P-location).  The connected components of that relation
are the cells.  This module performs the derivation with a union-find
structure so that it stays near-linear even for large synthetic buildings.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from ..geometry import Rect
from .entities import Cell
from .floorplan import FloorPlan


class UnionFind:
    """A classic disjoint-set structure with path compression and union by size."""

    def __init__(self, elements: List[int]):
        self._parent: Dict[int, int] = {e: e for e in elements}
        self._size: Dict[int, int] = {e: 1 for e in elements}

    def find(self, element: int) -> int:
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: int, b: int) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]

    def groups(self) -> Dict[int, Set[int]]:
        """Return ``root -> member set`` for every component."""
        result: Dict[int, Set[int]] = {}
        for element in self._parent:
            result.setdefault(self.find(element), set()).add(element)
        return result


def guarded_door_ids(plan: FloorPlan) -> Set[int]:
    """Return the ids of doors hosting at least one partitioning P-location."""
    return {
        ploc.door_id
        for ploc in plan.plocations.values()
        if ploc.is_partitioning and ploc.door_id is not None
    }


def derive_cells(plan: FloorPlan) -> List[Cell]:
    """Derive the topological cells of a floor plan.

    Partitions connected by a door without any partitioning P-location belong
    to the same cell.  The returned cells are numbered deterministically (by
    the smallest partition id they contain) so repeated derivations on the
    same plan produce identical ids — important because cell ids are embedded
    in the indoor location matrix and in test expectations.
    """
    partition_ids = list(plan.partitions)
    if not partition_ids:
        return []
    uf = UnionFind(partition_ids)
    guarded = guarded_door_ids(plan)
    for door in plan.doors.values():
        if door.door_id in guarded:
            continue
        a, b = door.partition_ids
        uf.union(a, b)

    groups = uf.groups()
    ordered = sorted(groups.values(), key=min)
    cells: List[Cell] = []
    for index, members in enumerate(ordered):
        mbr = _cell_mbr(plan, members)
        cells.append(
            Cell(cell_id=index, partition_ids=frozenset(members), mbr=mbr)
        )
    return cells


def partition_to_cell(cells: List[Cell]) -> Dict[int, int]:
    """Return a ``partition_id -> cell_id`` mapping for the derived cells."""
    mapping: Dict[int, int] = {}
    for cell in cells:
        for pid in cell.partition_ids:
            mapping[pid] = cell.cell_id
    return mapping


def _cell_mbr(plan: FloorPlan, members: Set[int]) -> Rect:
    rects = [plan.partitions[pid].rect for pid in sorted(members)]
    floors = {r.floor for r in rects}
    if len(floors) == 1:
        return Rect.union_all(rects)
    # A cell spanning floors (e.g. an unguarded staircase): keep a planar MBR
    # on the lowest floor; the MBR is only used for coarse pruning.
    base_floor = min(floors)
    xmin = min(r.xmin for r in rects)
    ymin = min(r.ymin for r in rects)
    xmax = max(r.xmax for r in rects)
    ymax = max(r.ymax for r in rects)
    return Rect(xmin, ymin, xmax, ymax, base_floor)


def cell_partition_signature(cells: List[Cell]) -> FrozenSet[FrozenSet[int]]:
    """Return the set-of-partition-sets signature of a cell decomposition.

    Useful in tests to compare decompositions independently of cell ids.
    """
    return frozenset(cell.partition_ids for cell in cells)
