"""Indoor space entities: partitions, doors, P-locations, S-locations, cells.

Terminology follows Section 2.1 of the paper:

* A **partition** is a room, hallway, or staircase created by walls and doors.
* A **door** connects exactly two partitions and is the only way to move
  between them.
* A **P-location** (positioning location) is a discrete point location an
  indoor positioning system can report.  *Partitioning* P-locations sit at
  doors and split the space into cells; *presence* P-locations merely witness
  that an object is inside some partition.
* An **S-location** (semantic location) is a user-defined region of interest,
  e.g. a shop or an exhibition area.
* A **cell** is a partition or a maximal union of partitions such that an
  object cannot enter or leave the cell without being observed at one of the
  partitioning P-locations on its boundary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from ..geometry import Point, Rect


class PartitionKind(str, enum.Enum):
    """The functional kind of an indoor partition."""

    ROOM = "room"
    HALLWAY = "hallway"
    STAIRCASE = "staircase"


class PLocationKind(str, enum.Enum):
    """Whether a P-location partitions the space or merely implies presence."""

    PARTITIONING = "partitioning"
    PRESENCE = "presence"


@dataclass(frozen=True)
class Partition:
    """An indoor partition (room, hallway, or staircase)."""

    partition_id: int
    rect: Rect
    kind: PartitionKind = PartitionKind.ROOM
    name: str = ""

    @property
    def floor(self) -> int:
        return self.rect.floor

    def contains(self, point: Point) -> bool:
        return self.rect.contains_point(point)

    def label(self) -> str:
        return self.name or f"r{self.partition_id}"


@dataclass(frozen=True)
class Door:
    """A door connecting two partitions.

    ``partition_ids`` always holds exactly two distinct partition identifiers.
    Staircase doors connect partitions on different floors; planar distance
    across such a door is taken as the door-to-door walking distance within the
    staircase partition.
    """

    door_id: int
    position: Point
    partition_ids: Tuple[int, int]
    name: str = ""

    def __post_init__(self) -> None:
        if len(set(self.partition_ids)) != 2:
            raise ValueError("a door must connect two distinct partitions")

    def other_side(self, partition_id: int) -> int:
        """Return the partition on the other side of the door."""
        a, b = self.partition_ids
        if partition_id == a:
            return b
        if partition_id == b:
            return a
        raise ValueError(f"partition {partition_id} is not incident to door {self.door_id}")

    def connects(self, partition_a: int, partition_b: int) -> bool:
        return set(self.partition_ids) == {partition_a, partition_b}

    def label(self) -> str:
        return self.name or f"d{self.door_id}"


@dataclass(frozen=True)
class PLocation:
    """A positioning location (reference point) returned by the positioning system."""

    ploc_id: int
    position: Point
    kind: PLocationKind
    door_id: Optional[int] = None
    partition_id: Optional[int] = None
    name: str = ""

    def __post_init__(self) -> None:
        if self.kind is PLocationKind.PARTITIONING and self.door_id is None:
            raise ValueError("a partitioning P-location must reference the door it guards")
        if self.kind is PLocationKind.PRESENCE and self.partition_id is None:
            raise ValueError("a presence P-location must reference its containing partition")

    @property
    def is_partitioning(self) -> bool:
        return self.kind is PLocationKind.PARTITIONING

    @property
    def is_presence(self) -> bool:
        return self.kind is PLocationKind.PRESENCE

    def label(self) -> str:
        return self.name or f"p{self.ploc_id}"


@dataclass(frozen=True)
class SLocation:
    """A semantic location: a user-defined region of interest."""

    sloc_id: int
    region: Rect
    name: str = ""

    @property
    def floor(self) -> int:
        return self.region.floor

    @property
    def area(self) -> float:
        return self.region.area

    def contains(self, point: Point) -> bool:
        return self.region.contains_point(point)

    def label(self) -> str:
        return self.name or f"s{self.sloc_id}"


@dataclass(frozen=True)
class Cell:
    """A topological cell: one partition or a union of adjacent partitions.

    An object cannot enter or leave a cell without being positioned at one of
    the partitioning P-locations on its boundary (Section 2.1, footnote 1).
    """

    cell_id: int
    partition_ids: FrozenSet[int]
    mbr: Rect = field(compare=False)
    name: str = ""

    def __post_init__(self) -> None:
        if not self.partition_ids:
            raise ValueError("a cell must cover at least one partition")

    def covers_partition(self, partition_id: int) -> bool:
        return partition_id in self.partition_ids

    def label(self) -> str:
        return self.name or f"c{self.cell_id}"
