"""Ablation studies for the design choices called out in DESIGN.md.

Two ablations complement the paper's own experiments:

* **data reduction ablation** — quantifies how much the intra-merge,
  inter-merge, and PSL pruning steps shrink the candidate path space and the
  running time (the paper's §5.2.1 reports the end-to-end effect only);
* **index ablation** — compares the two time indexes (1D R-tree vs. B+-tree)
  on the IUPT range query, and the raw vs. merged indoor location matrix
  dimensions.
"""

from __future__ import annotations

import time
from typing import Dict, List

from ..core import DataReducer, DataReductionConfig, TkPLQuery
from ..core.paths import candidate_path_count
from ..data import IUPT
from ..engine import QueryEngine
from ..eval import run_method
from ..space import IndoorLocationMatrix
from .config import get_real_scenario, real_scale
from .runner import QuerySetting, split_into_time_batches


def ablation_reduction(scale: str = "small") -> List[Dict[str, object]]:
    """Quantify the path-space shrinkage of each data reduction configuration."""
    scenario = get_real_scenario(scale)
    knobs = real_scale(scale)
    start, end = scenario.query_interval(knobs.default_delta_seconds, seed=3)
    sequences = scenario.iupt.sequences_in(start, end)
    query_set = set(scenario.slocation_ids())

    configurations = {
        "none": DataReductionConfig.disabled(),
        "intra-merge only": DataReductionConfig(True, False, False),
        "inter-merge only": DataReductionConfig(False, True, False),
        "intra+inter": DataReductionConfig(True, True, False),
        "full (paper)": DataReductionConfig.enabled(),
    }

    rows: List[Dict[str, object]] = []
    for label, config in configurations.items():
        reducer = DataReducer(scenario.system.graph, scenario.system.matrix, config)
        began = time.perf_counter()
        candidate_before = 0
        candidate_after = 0
        kept_objects = 0
        for sequence in sequences.values():
            candidate_before += candidate_path_count(sequence)
            reduced = reducer.reduce(sequence, query_set)
            if reduced.pruned:
                continue
            kept_objects += 1
            candidate_after += candidate_path_count(list(reduced.sequence))
        elapsed = time.perf_counter() - began
        rows.append(
            {
                "configuration": label,
                "objects_kept": kept_objects,
                "objects_total": len(sequences),
                "candidate_paths_before": candidate_before,
                "candidate_paths_after": candidate_after,
                "reduction_factor": round(
                    candidate_before / candidate_after if candidate_after else float("inf"), 2
                ),
                "time_s": round(elapsed, 4),
            }
        )
    return rows


def ablation_indexes(scale: str = "small") -> List[Dict[str, object]]:
    """Compare time-index variants and matrix merging on the same workload."""
    scenario = get_real_scenario(scale)
    knobs = real_scale(scale)
    start, end = scenario.query_interval(knobs.default_delta_seconds, seed=3)

    rows: List[Dict[str, object]] = []
    for index_kind in ("1dr-tree", "bplus-tree"):
        table = IUPT(index_kind=index_kind)
        table.extend(scenario.iupt.records)
        began = time.perf_counter()
        repetitions = 50
        fetched = 0
        for _ in range(repetitions):
            fetched = len(table.range_query(start, end))
        elapsed = (time.perf_counter() - began) / repetitions
        rows.append(
            {
                "component": "time-index",
                "variant": index_kind,
                "records_fetched": fetched,
                "time_s": round(elapsed, 6),
            }
        )

    raw = IndoorLocationMatrix.from_graph(scenario.system.graph)
    merged = raw.merged(scenario.system.graph)
    for label, matrix in (("raw NxN", raw), ("merged MxM", merged)):
        rows.append(
            {
                "component": "indoor-location-matrix",
                "variant": label,
                "dimension": matrix.dimension,
                "nonempty_pairs": matrix.nonempty_pairs(),
            }
        )
    return rows


def ablation_storage(scale: str = "small") -> List[Dict[str, object]]:
    """Compare the flat and sharded IUPT stores on the same report stream.

    Measures per-record appends against batch ingestion on both backends and
    a shard-boundary-straddling window query, reporting the shard pruning
    the sharded store achieved.  (``benchmarks/test_bench_storage.py`` runs
    the larger, asserted version of this comparison.)
    """
    scenario = get_real_scenario(scale)
    knobs = real_scale(scale)
    start, end = scenario.query_interval(knobs.default_delta_seconds, seed=3)
    records = list(scenario.iupt.records)
    shard_seconds = max(scenario.duration_seconds / 8.0, 1.0)

    rows: List[Dict[str, object]] = []
    for store_kind, build in (
        ("flat", lambda: IUPT()),
        ("sharded", lambda: IUPT.sharded(shard_seconds=shard_seconds)),
    ):
        for ingestion, load in (
            ("per-record append", lambda t: [t.append(r) for r in records]),
            ("ingest_batch", lambda t: t.ingest_batch(records)),
        ):
            table = build()
            began = time.perf_counter()
            load(table)
            fetched = len(table.range_query(start, end))  # forces index build
            ingest_elapsed = time.perf_counter() - began

            began = time.perf_counter()
            for _ in range(20):
                table.range_query(start, end)
            query_elapsed = (time.perf_counter() - began) / 20

            row: Dict[str, object] = {
                "store": store_kind,
                "ingestion": ingestion,
                "records": len(records),
                "records_fetched": fetched,
                "ingest_time_s": round(ingest_elapsed, 4),
                "window_query_time_s": round(query_elapsed, 6),
            }
            if store_kind == "sharded":
                store = table.store
                row["shards"] = store.shard_count
                row["shards_per_query"] = len(
                    store.overlapping_shard_keys(start, end)
                )
            rows.append(row)
    return rows


def ablation_continuous(scale: str = "small") -> List[Dict[str, object]]:
    """Standing-query maintenance: incremental vs. invalidate-and-recompute.

    Replays the tail of the real scenario's report stream as live batches
    while standing TkPLQ queries are registered over historical windows and
    the live edge, once per refresh strategy and store kind.  The maintained
    results are identical by construction (the differential harness in
    ``tests/test_continuous.py`` asserts it); the rows quantify how much
    less work the delta maintenance does — refreshes skipped outright,
    artefacts re-keyed instead of recomputed, and the refresh time saved.
    (``benchmarks/test_bench_continuous.py`` runs the larger, asserted
    version of this comparison.)
    """
    scenario = get_real_scenario(scale)
    records = sorted(scenario.iupt.records, key=lambda r: r.timestamp)
    duration = scenario.duration_seconds
    history_end = duration / 2.0
    shard_seconds = max(duration / 8.0, 1.0)
    batch_seconds = shard_seconds / 2.0

    history = [r for r in records if r.timestamp < history_end]
    live = [r for r in records if r.timestamp >= history_end]
    batches = split_into_time_batches(live, history_end, batch_seconds)

    windows = [
        (0.0, shard_seconds),
        (shard_seconds, 2 * shard_seconds),
        (history_end, duration),
    ]
    slocs = scenario.slocation_ids()

    rows: List[Dict[str, object]] = []
    for store_kind in ("flat", "sharded"):
        for refresh in ("incremental", "recompute"):
            table = (
                IUPT.sharded(shard_seconds=shard_seconds)
                if store_kind == "sharded"
                else IUPT()
            )
            table.ingest_batch(history)
            engine = QueryEngine(scenario.system.graph, scenario.system.matrix)
            continuous = engine.continuous(table, refresh=refresh)
            for start, end in windows:
                continuous.register_top_k(slocs, k=3, start=start, end=end)
            for batch in batches:
                table.ingest_batch(batch)
            summary = continuous.describe()
            continuous.close()
            rows.append(
                {
                    "store": store_kind,
                    "refresh": refresh,
                    "standing_queries": len(windows),
                    "batches_streamed": len(batches),
                    "refreshes": summary["refreshes"],
                    "skipped": summary["skipped"],
                    "objects_recomputed": summary["objects_recomputed"],
                    "objects_rekeyed": summary["objects_rekeyed"],
                    "refresh_time_s": summary["elapsed_seconds"],
                }
            )
    return rows


def ablation_algorithms(scale: str = "small") -> List[Dict[str, object]]:
    """Head-to-head of the three search algorithms with and without reduction."""
    scenario = get_real_scenario(scale)
    knobs = real_scale(scale)
    setting = QuerySetting(
        k=3,
        q_fraction=0.6,
        delta_seconds=knobs.default_delta_seconds,
        repeats=1,
        mc_rounds=knobs.mc_rounds,
    )
    query = setting.queries(scenario)[0]
    rows: List[Dict[str, object]] = []
    for method in ("naive", "nl", "bf", "naive-org", "nl-org", "bf-org"):
        outcome = run_method(scenario, method, query)
        rows.append(outcome.as_row())
    return rows
