"""Experiment configuration and scenario caching.

All experiment runners and benchmarks obtain their scenarios through this
module so that (a) the same underlying data is reused across the many
parameter sweeps that share it, and (b) the scale of every experiment is
controlled in one place.

Two scales are defined:

* ``"small"`` — the default used by the test suite and the benchmark harness:
  a single-floor real scenario with a handful of users and a two-floor
  synthetic building with tens of objects, so the full suite completes in
  minutes of pure-Python time.
* ``"paper"`` — the parameters reported in the paper (35 users / 150 minutes
  of real data; 5 floors and thousands of objects for the synthetic data).
  These are provided for completeness; running them takes hours in pure
  Python and is not part of the automated suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..synth import Scenario, build_real_scenario, build_synthetic_scenario

_SCENARIO_CACHE: Dict[Tuple, Scenario] = {}


@dataclass(frozen=True)
class RealScale:
    """Scale knobs of the "real data" (university floor) scenario."""

    num_users: int
    duration_seconds: float
    default_delta_seconds: float
    mc_rounds: int
    repeats: int


@dataclass(frozen=True)
class SynthScale:
    """Scale knobs of the synthetic (grid building) scenario."""

    num_objects: int
    floors: int
    room_rows: int
    rooms_per_row: int
    duration_seconds: float
    default_delta_seconds: float
    mc_rounds: int
    repeats: int


REAL_SCALES: Dict[str, RealScale] = {
    "small": RealScale(
        num_users=12,
        duration_seconds=480.0,
        default_delta_seconds=180.0,
        mc_rounds=40,
        repeats=1,
    ),
    "paper": RealScale(
        num_users=35,
        duration_seconds=9000.0,
        default_delta_seconds=1800.0,
        mc_rounds=900,
        repeats=15,
    ),
}

SYNTH_SCALES: Dict[str, SynthScale] = {
    "small": SynthScale(
        num_objects=25,
        floors=2,
        room_rows=2,
        rooms_per_row=4,
        duration_seconds=480.0,
        default_delta_seconds=180.0,
        mc_rounds=40,
        repeats=1,
    ),
    "paper": SynthScale(
        num_objects=5000,
        floors=5,
        room_rows=10,
        rooms_per_row=10,
        duration_seconds=7200.0,
        default_delta_seconds=1800.0,
        mc_rounds=25000,
        repeats=20,
    ),
}

# Default query parameters mirroring Tables 3 and 6 of the paper.
REAL_DEFAULTS = {"k": 3, "q_fraction": 0.6, "mss": 4, "T": 3.0, "mu": 2.1}
SYNTH_DEFAULTS = {"k": 10, "q_fraction": 0.5, "mss": 4, "T": 3.0, "mu": 5.0}


def real_scale(name: str = "small") -> RealScale:
    return REAL_SCALES[name]


def synth_scale(name: str = "small") -> SynthScale:
    return SYNTH_SCALES[name]


def get_real_scenario(
    scale: str = "small",
    max_sample_set_size: int = 4,
    max_period_seconds: float = 3.0,
    positioning_error: float = 2.1,
    seed: int = 11,
    with_rfid: bool = False,
) -> Scenario:
    """Build (or fetch from cache) the real-data scenario at a given scale."""
    knobs = real_scale(scale)
    key = (
        "real",
        scale,
        max_sample_set_size,
        max_period_seconds,
        positioning_error,
        seed,
        with_rfid,
    )
    if key not in _SCENARIO_CACHE:
        _SCENARIO_CACHE[key] = build_real_scenario(
            num_users=knobs.num_users,
            duration_seconds=knobs.duration_seconds,
            max_period_seconds=max_period_seconds,
            max_sample_set_size=max_sample_set_size,
            positioning_error=positioning_error,
            seed=seed,
            with_rfid=with_rfid,
        )
    return _SCENARIO_CACHE[key]


def get_synth_scenario(
    scale: str = "small",
    num_objects: Optional[int] = None,
    max_sample_set_size: int = 4,
    max_period_seconds: float = 3.0,
    positioning_error: float = 5.0,
    seed: int = 23,
    with_rfid: bool = False,
) -> Scenario:
    """Build (or fetch from cache) the synthetic scenario at a given scale."""
    knobs = synth_scale(scale)
    objects = num_objects if num_objects is not None else knobs.num_objects
    key = (
        "synth",
        scale,
        objects,
        max_sample_set_size,
        max_period_seconds,
        positioning_error,
        seed,
        with_rfid,
    )
    if key not in _SCENARIO_CACHE:
        _SCENARIO_CACHE[key] = build_synthetic_scenario(
            num_objects=objects,
            floors=knobs.floors,
            room_rows=knobs.room_rows,
            rooms_per_row=knobs.rooms_per_row,
            duration_seconds=knobs.duration_seconds,
            max_period_seconds=max_period_seconds,
            max_sample_set_size=max_sample_set_size,
            positioning_error=positioning_error,
            seed=seed,
            with_rfid=with_rfid,
        )
    return _SCENARIO_CACHE[key]


def clear_scenario_cache() -> None:
    """Drop every cached scenario (used by tests exercising the cache)."""
    _SCENARIO_CACHE.clear()
