"""Experiment runners regenerating every table and figure of the evaluation."""

from .config import (
    REAL_DEFAULTS,
    SYNTH_DEFAULTS,
    clear_scenario_cache,
    get_real_scenario,
    get_synth_scenario,
    real_scale,
    synth_scale,
)
from .registry import EXPERIMENTS, experiment_names, run_experiment
from .runner import (
    QuerySetting,
    batched_outcome,
    evaluate,
    format_table,
    overlapping_queries,
    single_query_outcome,
)

__all__ = [
    "EXPERIMENTS",
    "QuerySetting",
    "REAL_DEFAULTS",
    "SYNTH_DEFAULTS",
    "batched_outcome",
    "clear_scenario_cache",
    "evaluate",
    "experiment_names",
    "format_table",
    "get_real_scenario",
    "get_synth_scenario",
    "overlapping_queries",
    "real_scale",
    "run_experiment",
    "single_query_outcome",
    "synth_scale",
]
