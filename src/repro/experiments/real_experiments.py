"""Experiments on the "real data" scenario (paper Section 5.2).

Each function regenerates one table or figure of the paper on the
university-floor scenario.  Rows contain the same quantities the paper plots
(running time, pruning ratio, Kendall coefficient, recall) for the same
methods; DESIGN.md §4 lists the shape expectations checked against the paper.
"""

from __future__ import annotations

from typing import Dict, List

from .config import REAL_DEFAULTS, get_real_scenario, real_scale
from .runner import QuerySetting, evaluate

FULL_METHOD_SET = (
    "sc",
    "sc-rho",
    "mc",
    "bf",
    "nl",
    "naive",
    "bf-org",
    "nl-org",
    "naive-org",
)
EFFECTIVENESS_METHODS = ("bf", "sc", "sc-rho", "mc")
EFFICIENCY_METHODS = ("nl", "bf")


def _default_setting(scale: str, **overrides) -> QuerySetting:
    knobs = real_scale(scale)
    parameters = {
        "k": REAL_DEFAULTS["k"],
        "q_fraction": REAL_DEFAULTS["q_fraction"],
        "delta_seconds": knobs.default_delta_seconds,
        "repeats": knobs.repeats,
        "mc_rounds": knobs.mc_rounds,
    }
    parameters.update(overrides)
    return QuerySetting(**parameters)


def table4(scale: str = "small") -> List[Dict[str, object]]:
    """Table 4: all methods at the default setting (time, pruning, τ, recall)."""
    scenario = get_real_scenario(scale)
    return evaluate(scenario, FULL_METHOD_SET, _default_setting(scale))


def table5(scale: str = "small") -> List[Dict[str, object]]:
    """Table 5: running time of BF / SC / SC-ρ / MC for mss = 1..4."""
    rows: List[Dict[str, object]] = []
    base = get_real_scenario(scale)
    for mss in (1, 2, 3, 4):
        scenario = base.with_mss(mss)
        rows.extend(
            evaluate(
                scenario,
                EFFECTIVENESS_METHODS,
                _default_setting(scale),
                extra={"mss": mss},
            )
        )
    return rows


def fig07(scale: str = "small") -> List[Dict[str, object]]:
    """Figure 7: effectiveness (τ, recall) vs. mss on real data."""
    # Table 5 and Figure 7 share the same runs; effectiveness columns are
    # already part of the rows produced there.
    return table5(scale)


def fig08(scale: str = "small") -> List[Dict[str, object]]:
    """Figure 8: efficiency (time, pruning ratio) vs. k on real data."""
    scenario = get_real_scenario(scale)
    rows: List[Dict[str, object]] = []
    max_k = max(2, round(len(scenario.plan.slocations) * REAL_DEFAULTS["q_fraction"]))
    for k in range(1, max_k + 1):
        rows.extend(
            evaluate(
                scenario,
                EFFICIENCY_METHODS,
                _default_setting(scale, k=k),
                extra={"k": k},
            )
        )
    return rows


def fig09(scale: str = "small") -> List[Dict[str, object]]:
    """Figure 9: efficiency vs. |Q| (fraction of S-locations) on real data."""
    scenario = get_real_scenario(scale)
    rows: List[Dict[str, object]] = []
    for fraction in (0.2, 0.4, 0.6, 0.8, 1.0):
        rows.extend(
            evaluate(
                scenario,
                EFFICIENCY_METHODS,
                _default_setting(scale, q_fraction=fraction),
                extra={"q_fraction": fraction},
            )
        )
    return rows


def fig10(scale: str = "small") -> List[Dict[str, object]]:
    """Figure 10: efficiency vs. Δt on real data."""
    scenario = get_real_scenario(scale)
    knobs = real_scale(scale)
    rows: List[Dict[str, object]] = []
    for factor in (0.5, 1.0, 1.5):
        delta = knobs.default_delta_seconds * factor
        rows.extend(
            evaluate(
                scenario,
                EFFICIENCY_METHODS,
                _default_setting(scale, delta_seconds=delta),
                extra={"delta_seconds": delta},
            )
        )
    return rows


def fig11(scale: str = "small") -> List[Dict[str, object]]:
    """Figure 11: effectiveness vs. k on real data."""
    scenario = get_real_scenario(scale)
    rows: List[Dict[str, object]] = []
    max_k = max(2, round(len(scenario.plan.slocations) * REAL_DEFAULTS["q_fraction"]))
    for k in range(1, max_k + 1):
        rows.extend(
            evaluate(
                scenario,
                EFFECTIVENESS_METHODS,
                _default_setting(scale, k=k),
                extra={"k": k},
            )
        )
    return rows


def fig12(scale: str = "small") -> List[Dict[str, object]]:
    """Figure 12: effectiveness vs. |Q| on real data."""
    scenario = get_real_scenario(scale)
    rows: List[Dict[str, object]] = []
    for fraction in (0.2, 0.4, 0.6, 0.8, 1.0):
        rows.extend(
            evaluate(
                scenario,
                EFFECTIVENESS_METHODS,
                _default_setting(scale, q_fraction=fraction),
                extra={"q_fraction": fraction},
            )
        )
    return rows


def fig13(scale: str = "small") -> List[Dict[str, object]]:
    """Figure 13: effectiveness vs. Δt on real data."""
    scenario = get_real_scenario(scale)
    knobs = real_scale(scale)
    rows: List[Dict[str, object]] = []
    for factor in (0.5, 1.0, 1.5):
        delta = knobs.default_delta_seconds * factor
        rows.extend(
            evaluate(
                scenario,
                EFFECTIVENESS_METHODS,
                _default_setting(scale, delta_seconds=delta),
                extra={"delta_seconds": delta},
            )
        )
    return rows
