"""Command-line entry point: ``python -m repro.experiments <name> [--scale paper]``.

Runs one registered experiment (or ``all``) and prints its result table.  The
same runners back the pytest-benchmark targets in ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from .registry import EXPERIMENTS, run_experiment
from .runner import format_table


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a table or figure of the paper's evaluation.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment identifier (e.g. table4, fig08) or 'all'",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=("small", "paper"),
        help="parameter scale: 'small' (default, minutes) or 'paper' (hours)",
    )
    arguments = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if arguments.experiment == "all" else [arguments.experiment]
    for name in names:
        rows = run_experiment(name, scale=arguments.scale)
        print(f"== {name} (scale={arguments.scale}) ==")
        print(format_table(rows))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
