"""The RFID comparison experiment (paper Table 7).

The same ground-truth trajectories are observed both by the probabilistic
positioning simulator (feeding BF) and by the RFID tracking simulator (feeding
the SCC and UR baselines); Table 7 compares the Kendall coefficient of the
three methods while varying k and |Q|.
"""

from __future__ import annotations

from typing import Dict, List

from .config import get_synth_scenario, synth_scale
from .runner import QuerySetting, evaluate
from .synth_experiments import K_VALUES, Q_FRACTIONS, _clamp_k, _default_setting

RFID_METHODS = ("scc", "ur", "bf")


def table7(scale: str = "small") -> List[Dict[str, object]]:
    """Table 7: Kendall coefficient of SCC / UR / BF for combinations of k and |Q|."""
    scenario = get_synth_scenario(scale, with_rfid=True)
    rows: List[Dict[str, object]] = []
    for fraction in Q_FRACTIONS[scale]:
        for k in K_VALUES[scale]:
            setting = _default_setting(scale, k=k, q_fraction=fraction)
            setting.k = _clamp_k(scenario, setting.k, fraction)
            rows.extend(
                evaluate(
                    scenario,
                    RFID_METHODS,
                    setting,
                    extra={"q_fraction": fraction, "k": setting.k},
                )
            )
    return rows
