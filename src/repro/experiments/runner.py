"""Shared sweep machinery for the per-table / per-figure experiment runners.

Every experiment in the paper's evaluation varies one knob (k, |Q|, Δt, mss,
T, µ, |O|) and reports either efficiency (running time, pruning ratio) or
effectiveness (Kendall τ, recall) for a set of methods.  The functions here
run one parameter setting over a few repeated random queries and average the
measures, producing flat result rows the experiment modules assemble into
tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core import TkPLQuery
from ..data.records import PositioningRecord
from ..eval import MethodOutcome, run_batched, run_method
from ..eval.ground_truth import ground_truth_ranking
from ..synth import Scenario


def split_into_time_batches(
    records: Sequence[PositioningRecord], start: float, step: float
) -> List[List[PositioningRecord]]:
    """Slice a time-ordered record stream into fixed-duration flush batches.

    Mirrors how a live loader flushes its buffer every ``step`` seconds from
    ``start``: one (possibly empty) batch per elapsed interval, with the
    trailing partial batch kept.  Shared by the continuous-query ablation
    and the streaming benchmarks so all of them replay the same stream
    shape.
    """
    if step <= 0:
        raise ValueError("step must be positive")
    batches: List[List[PositioningRecord]] = []
    current: List[PositioningRecord] = []
    boundary = start + step
    for record in records:
        while record.timestamp >= boundary:
            batches.append(current)
            current = []
            boundary += step
        current.append(record)
    if current:
        batches.append(current)
    return batches


@dataclass
class QuerySetting:
    """One fully specified query setting over a scenario."""

    k: int
    q_fraction: float
    delta_seconds: Optional[float]
    repeats: int = 2
    seed: int = 5
    mc_rounds: int = 60
    sc_rho: float = 0.25

    def queries(self, scenario: Scenario) -> List[TkPLQuery]:
        """The repeated random queries drawn deterministically from the seed."""
        queries = []
        for repeat in range(self.repeats):
            query_slocations = scenario.pick_query_slocations(
                self.q_fraction, seed=self.seed + repeat
            )
            k = min(self.k, len(query_slocations))
            start, end = scenario.query_interval(
                self.delta_seconds, seed=self.seed + repeat
            )
            queries.append(TkPLQuery.build(query_slocations, k, start, end))
        return queries


def evaluate(
    scenario: Scenario,
    methods: Sequence[str],
    setting: QuerySetting,
    extra: Optional[Dict[str, object]] = None,
) -> List[Dict[str, object]]:
    """Run ``methods`` over the setting's repeated queries and average measures.

    Returns one row per method with the averaged time, pruning ratio, Kendall
    coefficient and recall, annotated with the ``extra`` key/values (typically
    the value of the swept parameter).
    """
    sums: Dict[str, Dict[str, float]] = {
        method: {"time_s": 0.0, "pruning_ratio": 0.0, "kendall": 0.0, "recall": 0.0}
        for method in methods
    }
    queries = setting.queries(scenario)
    for query in queries:
        truth = ground_truth_ranking(
            scenario.trajectories,
            scenario.plan,
            query.start,
            query.end,
            query.query_slocations,
            query.k,
        )
        for method in methods:
            outcome = run_method(
                scenario,
                method,
                query,
                sc_rho=setting.sc_rho,
                mc_rounds=setting.mc_rounds,
                truth_ranking=truth,
            )
            sums[method]["time_s"] += outcome.elapsed_seconds
            sums[method]["pruning_ratio"] += outcome.pruning_ratio
            sums[method]["kendall"] += outcome.kendall
            sums[method]["recall"] += outcome.recall

    rows: List[Dict[str, object]] = []
    count = float(len(queries))
    for method in methods:
        row: Dict[str, object] = {"method": method}
        if extra:
            row.update(extra)
        row.update(
            {
                "time_s": round(sums[method]["time_s"] / count, 4),
                "pruning_ratio": round(sums[method]["pruning_ratio"] / count, 4),
                "kendall": round(sums[method]["kendall"] / count, 4),
                "recall": round(sums[method]["recall"] / count, 4),
            }
        )
        rows.append(row)
    return rows


def single_query_outcome(
    scenario: Scenario,
    method: str,
    setting: QuerySetting,
) -> MethodOutcome:
    """Run one method on the first query of a setting (used by benchmarks)."""
    query = setting.queries(scenario)[0]
    return run_method(
        scenario,
        method,
        query,
        sc_rho=setting.sc_rho,
        mc_rounds=setting.mc_rounds,
    )


def overlapping_queries(
    scenario: Scenario,
    count: int,
    k: int = 3,
    q_fraction: float = 0.5,
    delta_seconds: Optional[float] = None,
    seed: int = 5,
) -> List[TkPLQuery]:
    """``count`` TkPLQ queries over one shared window with overlapping sets.

    Models a multi-tenant query stream hammering the same time range: every
    query draws its own (deterministic) S-location subset, so consecutive
    queries overlap heavily without being identical.  This is the workload
    the engine's batch planner and cross-query presence store target.
    """
    start, end = scenario.query_interval(delta_seconds, seed=seed)
    queries: List[TkPLQuery] = []
    for repeat in range(count):
        query_slocations = scenario.pick_query_slocations(
            q_fraction, seed=seed + repeat
        )
        queries.append(
            TkPLQuery.build(
                query_slocations, min(k, len(query_slocations)), start, end
            )
        )
    return queries


def batched_outcome(
    scenario: Scenario,
    queries: Sequence[TkPLQuery],
) -> List[Dict[str, object]]:
    """Answer a query stream in one batched pass; one flat row per query."""
    report = run_batched(scenario, queries)
    return [
        {
            "query": index,
            "k": result.query.k,
            "q_size": len(result.query.query_slocations),
            "top_k": result.top_k_ids(),
            "time_s": round(result.stats.elapsed_seconds, 4),
        }
        for index, result in enumerate(report.results)
    ]


def format_table(rows: Sequence[Dict[str, object]]) -> str:
    """Render result rows as a fixed-width text table (for CLI / logs)."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)
