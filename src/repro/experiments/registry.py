"""The experiment registry: every table / figure of the paper by name."""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from . import ablations, real_experiments, rfid_experiments, synth_experiments

ExperimentFn = Callable[..., List[Dict[str, object]]]

EXPERIMENTS: Dict[str, ExperimentFn] = {
    # Real-data experiments (Section 5.2).
    "table4": real_experiments.table4,
    "table5": real_experiments.table5,
    "fig07": real_experiments.fig07,
    "fig08": real_experiments.fig08,
    "fig09": real_experiments.fig09,
    "fig10": real_experiments.fig10,
    "fig11": real_experiments.fig11,
    "fig12": real_experiments.fig12,
    "fig13": real_experiments.fig13,
    # Synthetic experiments (Section 5.3).
    "fig14": synth_experiments.fig14,
    "fig15": synth_experiments.fig15,
    "fig16": synth_experiments.fig16,
    "fig17": synth_experiments.fig17,
    "fig18": synth_experiments.fig18,
    "fig19": synth_experiments.fig19,
    "fig20": synth_experiments.fig20,
    "fig21": synth_experiments.fig21,
    # RFID comparison (Section 5.3.3).
    "table7": rfid_experiments.table7,
    # Reproduction-specific ablations.
    "ablation_reduction": ablations.ablation_reduction,
    "ablation_indexes": ablations.ablation_indexes,
    "ablation_storage": ablations.ablation_storage,
    "ablation_continuous": ablations.ablation_continuous,
    "ablation_algorithms": ablations.ablation_algorithms,
}


def experiment_names() -> Sequence[str]:
    return tuple(EXPERIMENTS)


def run_experiment(name: str, scale: str = "small") -> List[Dict[str, object]]:
    """Run one registered experiment and return its result rows."""
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; available: {', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[name](scale=scale)
