"""Experiments on the synthetic (Vita-like) scenario (paper Section 5.3).

The synthetic experiments vary the data-generation knobs — the maximum
positioning period ``T``, the positioning error ``µ``, and the object count
``|O|`` — in addition to the query knobs, so several of them rebuild scenarios
through :mod:`repro.experiments.config` (which caches them per parameter set).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .config import SYNTH_DEFAULTS, get_synth_scenario, synth_scale
from .runner import QuerySetting, evaluate

EFFECTIVENESS_METHODS = ("bf", "sc", "sc-rho", "mc")
EFFICIENCY_METHODS = ("nl", "bf", "sc", "sc-rho", "mc")

# Reduced sweeps used at the "small" scale; the "paper" scale uses the exact
# values of Table 6.
T_VALUES = {"small": (1.0, 3.0, 5.0, 7.0), "paper": (1.0, 3.0, 5.0, 7.0)}
MU_VALUES = {"small": (3.0, 5.0, 7.0), "paper": (3.0, 5.0, 7.0)}
OBJECT_COUNTS = {"small": (20, 40, 60, 80), "paper": (2500, 5000, 7500, 10000)}
K_VALUES = {"small": (3, 5, 8, 10), "paper": (5, 10, 15, 20)}
Q_FRACTIONS = {"small": (0.25, 0.5, 0.75), "paper": (0.04, 0.08, 0.12)}
DELTA_FACTORS = {"small": (0.25, 0.5, 0.75, 1.0), "paper": (0.125, 0.25, 0.5, 1.0)}


def _default_setting(scale: str, **overrides) -> QuerySetting:
    knobs = synth_scale(scale)
    parameters = {
        "k": SYNTH_DEFAULTS["k"],
        "q_fraction": SYNTH_DEFAULTS["q_fraction"],
        "delta_seconds": knobs.default_delta_seconds,
        "repeats": knobs.repeats,
        "mc_rounds": knobs.mc_rounds,
        "sc_rho": 0.2,
    }
    parameters.update(overrides)
    return QuerySetting(**parameters)


def _clamp_k(scenario, setting_k: int, q_fraction: float) -> int:
    available = max(1, round(len(scenario.plan.slocations) * q_fraction))
    return min(setting_k, available)


def _sweep_scenarios_by(
    scale: str,
    parameter: str,
    values: Sequence[float],
    methods: Sequence[str],
    **setting_overrides,
) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for value in values:
        scenario = get_synth_scenario(scale, **{parameter: value})
        setting = _default_setting(scale, **setting_overrides)
        setting.k = _clamp_k(scenario, setting.k, setting.q_fraction)
        rows.extend(evaluate(scenario, methods, setting, extra={parameter: value}))
    return rows


# ----------------------------------------------------------------------
# Data-uncertainty experiments
# ----------------------------------------------------------------------
def fig14(scale: str = "small") -> List[Dict[str, object]]:
    """Figure 14: running time vs. T (panel a) and vs. µ (panel b)."""
    rows = _sweep_scenarios_by(
        scale, "max_period_seconds", T_VALUES[scale], EFFICIENCY_METHODS
    )
    rows += _sweep_scenarios_by(
        scale, "positioning_error", MU_VALUES[scale], EFFICIENCY_METHODS
    )
    return rows


def fig15(scale: str = "small") -> List[Dict[str, object]]:
    """Figure 15: effectiveness vs. the maximum positioning period T."""
    return _sweep_scenarios_by(
        scale, "max_period_seconds", T_VALUES[scale], EFFECTIVENESS_METHODS
    )


def fig16(scale: str = "small") -> List[Dict[str, object]]:
    """Figure 16: effectiveness vs. the positioning error µ."""
    return _sweep_scenarios_by(
        scale, "positioning_error", MU_VALUES[scale], EFFECTIVENESS_METHODS
    )


# ----------------------------------------------------------------------
# Scalability and query-parameter experiments
# ----------------------------------------------------------------------
def fig17(scale: str = "small") -> List[Dict[str, object]]:
    """Figure 17: running time vs. the number of moving objects |O|."""
    return _sweep_scenarios_by(
        scale, "num_objects", OBJECT_COUNTS[scale], EFFICIENCY_METHODS
    )


def fig18(scale: str = "small") -> List[Dict[str, object]]:
    """Figure 18: effectiveness vs. k on synthetic data."""
    scenario = get_synth_scenario(scale)
    rows: List[Dict[str, object]] = []
    for k in K_VALUES[scale]:
        setting = _default_setting(scale, k=k)
        setting.k = _clamp_k(scenario, setting.k, setting.q_fraction)
        rows.extend(
            evaluate(scenario, EFFECTIVENESS_METHODS, setting, extra={"k": setting.k})
        )
    return rows


def fig19(scale: str = "small") -> List[Dict[str, object]]:
    """Figure 19: effectiveness vs. |Q| on synthetic data."""
    scenario = get_synth_scenario(scale)
    rows: List[Dict[str, object]] = []
    for fraction in Q_FRACTIONS[scale]:
        setting = _default_setting(scale, q_fraction=fraction)
        setting.k = _clamp_k(scenario, setting.k, fraction)
        rows.extend(
            evaluate(
                scenario,
                EFFECTIVENESS_METHODS,
                setting,
                extra={"q_fraction": fraction},
            )
        )
    return rows


def fig20(scale: str = "small") -> List[Dict[str, object]]:
    """Figure 20: effectiveness vs. |O| on synthetic data."""
    return _sweep_scenarios_by(
        scale, "num_objects", OBJECT_COUNTS[scale], EFFECTIVENESS_METHODS
    )


def fig21(scale: str = "small") -> List[Dict[str, object]]:
    """Figure 21: effectiveness vs. Δt on synthetic data."""
    scenario = get_synth_scenario(scale)
    knobs = synth_scale(scale)
    rows: List[Dict[str, object]] = []
    for factor in DELTA_FACTORS[scale]:
        delta = knobs.duration_seconds * factor
        setting = _default_setting(scale, delta_seconds=delta)
        setting.k = _clamp_k(scenario, setting.k, setting.q_fraction)
        rows.extend(
            evaluate(
                scenario,
                EFFECTIVENESS_METHODS,
                setting,
                extra={"delta_seconds": delta},
            )
        )
    return rows
