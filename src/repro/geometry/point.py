"""2D/3D point primitives used throughout the indoor space model.

Indoor positioning locations, reference points, door anchors, and object
ground-truth locations are all represented as :class:`Point` instances.  The
third coordinate (``floor``) is a small integer identifying the building level
so that multi-floor buildings can be handled without a separate type.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True)
class Point:
    """An immutable point in indoor space.

    Parameters
    ----------
    x, y:
        Planar coordinates in metres.
    floor:
        Building level the point lies on.  Points on different floors are
        infinitely far apart for planar distance purposes; vertical movement
        is modelled explicitly through staircase partitions.
    """

    x: float
    y: float
    floor: int = 0

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``; ``inf`` across floors."""
        if self.floor != other.floor:
            return math.inf
        return math.hypot(self.x - other.x, self.y - other.y)

    def manhattan_to(self, other: "Point") -> float:
        """Manhattan (L1) distance to ``other``; ``inf`` across floors."""
        if self.floor != other.floor:
            return math.inf
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy shifted by ``(dx, dy)`` on the same floor."""
        return Point(self.x + dx, self.y + dy, self.floor)

    def midpoint(self, other: "Point") -> "Point":
        """Return the midpoint between two points on the same floor."""
        if self.floor != other.floor:
            raise ValueError("cannot take the midpoint of points on different floors")
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0, self.floor)

    def as_tuple(self) -> Tuple[float, float, int]:
        """Return ``(x, y, floor)``."""
        return (self.x, self.y, self.floor)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


def interpolate(start: Point, end: Point, fraction: float) -> Point:
    """Linearly interpolate between two points on the same floor.

    ``fraction`` = 0 returns ``start`` and 1 returns ``end``.  Values outside
    [0, 1] extrapolate along the same line, which is occasionally useful for
    the movement simulator when overshooting a waypoint within one tick.
    """
    if start.floor != end.floor:
        raise ValueError("cannot interpolate between points on different floors")
    return Point(
        start.x + (end.x - start.x) * fraction,
        start.y + (end.y - start.y) * fraction,
        start.floor,
    )
