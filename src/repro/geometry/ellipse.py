"""Ellipse geometry for the UR (uncertainty-region) RFID baseline.

The UR method of Lu et al. (EDBT 2016), reimplemented here as a comparison
baseline, models the region an object may have visited between two consecutive
RFID detections as an ellipse whose foci are the two reader positions and
whose major axis equals the maximum distance the object could have travelled
in the elapsed time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .point import Point
from .rect import Rect


@dataclass(frozen=True)
class Ellipse:
    """An ellipse defined by its two foci and major-axis length (2a)."""

    focus_a: Point
    focus_b: Point
    major_axis: float

    def __post_init__(self) -> None:
        if self.focus_a.floor != self.focus_b.floor:
            raise ValueError("ellipse foci must lie on the same floor")
        if self.major_axis < self.focal_distance - 1e-9:
            raise ValueError(
                "major axis must be at least the distance between the foci"
            )

    @property
    def floor(self) -> int:
        return self.focus_a.floor

    @property
    def focal_distance(self) -> float:
        return self.focus_a.distance_to(self.focus_b)

    @property
    def semi_major(self) -> float:
        return self.major_axis / 2.0

    @property
    def semi_minor(self) -> float:
        c = self.focal_distance / 2.0
        a = self.semi_major
        return math.sqrt(max(a * a - c * c, 0.0))

    @property
    def center(self) -> Point:
        return self.focus_a.midpoint(self.focus_b)

    @property
    def area(self) -> float:
        return math.pi * self.semi_major * self.semi_minor

    @property
    def mbr(self) -> Rect:
        """A conservative axis-aligned bounding rectangle of the ellipse."""
        center = self.center
        # The loose bound max(a, b) = a on both axes is sufficient for the
        # coarse intersection tests performed by the UR baseline.
        radius = self.semi_major
        return Rect(
            center.x - radius,
            center.y - radius,
            center.x + radius,
            center.y + radius,
            self.floor,
        )

    def contains_point(self, point: Point) -> bool:
        """Whether ``point`` is inside the ellipse (sum-of-distances test)."""
        if point.floor != self.floor:
            return False
        total = point.distance_to(self.focus_a) + point.distance_to(self.focus_b)
        return total <= self.major_axis + 1e-9

    def intersection_area_with_rect(self, rect: Rect, resolution: int = 12) -> float:
        """Approximate the area of overlap between the ellipse and ``rect``.

        The overlap is estimated by Monte-Carlo-free grid sampling over the
        rectangle restricted to the ellipse MBR: the rectangle is divided into
        ``resolution`` x ``resolution`` sample cells and the fraction of cell
        centres inside the ellipse is multiplied by the rectangle area.  The
        approximation error is bounded by the cell size, which is adequate for
        the ranking-only use in the UR baseline.
        """
        if rect.floor != self.floor:
            return 0.0
        window = rect.intersection(self.mbr)
        if window is None or window.area == 0.0:
            # The ellipse might still graze a degenerate rectangle; ignore.
            return 0.0
        dx = window.width / resolution
        dy = window.height / resolution
        inside = 0
        for i in range(resolution):
            x = window.xmin + (i + 0.5) * dx
            for j in range(resolution):
                y = window.ymin + (j + 0.5) * dy
                if self.contains_point(Point(x, y, self.floor)):
                    inside += 1
        return window.area * inside / float(resolution * resolution)
