"""Axis-aligned rectangles and minimum bounding rectangles (MBRs).

Rectangles are the workhorse geometry of the reproduction: indoor partitions
and semantic locations are rectangular regions, and R-tree nodes store MBRs.
A rectangle carries a ``floor`` so that regions on different floors never
intersect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from .point import Point


@dataclass(frozen=True)
class Rect:
    """An immutable axis-aligned rectangle ``[xmin, xmax] x [ymin, ymax]``.

    The rectangle is closed on all sides; degenerate rectangles (zero width or
    height) are allowed and behave as line segments or points, which is how
    door footprints and point MBRs are represented.
    """

    xmin: float
    ymin: float
    xmax: float
    ymax: float
    floor: int = 0

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(
                f"invalid rectangle bounds ({self.xmin}, {self.ymin}, "
                f"{self.xmax}, {self.ymax})"
            )

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> Point:
        return Point((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0, self.floor)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, point: Point) -> bool:
        """Whether ``point`` lies inside or on the border of this rectangle."""
        if point.floor != self.floor:
            return False
        return self.xmin <= point.x <= self.xmax and self.ymin <= point.y <= self.ymax

    def contains_rect(self, other: "Rect") -> bool:
        """Whether ``other`` lies entirely inside this rectangle."""
        if other.floor != self.floor:
            return False
        return (
            self.xmin <= other.xmin
            and self.ymin <= other.ymin
            and self.xmax >= other.xmax
            and self.ymax >= other.ymax
        )

    def intersects(self, other: "Rect") -> bool:
        """Whether the two rectangles share at least a boundary point."""
        if other.floor != self.floor:
            return False
        return (
            self.xmin <= other.xmax
            and other.xmin <= self.xmax
            and self.ymin <= other.ymax
            and other.ymin <= self.ymax
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """Return the overlapping rectangle, or ``None`` if disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.xmin, other.xmin),
            max(self.ymin, other.ymin),
            min(self.xmax, other.xmax),
            min(self.ymax, other.ymax),
            self.floor,
        )

    def intersection_area(self, other: "Rect") -> float:
        """Area of the overlap with ``other`` (0.0 if disjoint)."""
        overlap = self.intersection(other)
        return overlap.area if overlap is not None else 0.0

    # ------------------------------------------------------------------
    # Constructive operations
    # ------------------------------------------------------------------
    def union(self, other: "Rect") -> "Rect":
        """Return the MBR enclosing both rectangles (must share a floor)."""
        if other.floor != self.floor:
            raise ValueError("cannot union rectangles on different floors")
        return Rect(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
            self.floor,
        )

    def expanded(self, margin: float) -> "Rect":
        """Return a copy grown by ``margin`` on every side."""
        return Rect(
            self.xmin - margin,
            self.ymin - margin,
            self.xmax + margin,
            self.ymax + margin,
            self.floor,
        )

    def enlargement(self, other: "Rect") -> float:
        """Area increase caused by enlarging this MBR to also cover ``other``.

        Used by the R-tree insertion heuristic (choose-subtree).
        """
        return self.union(other).area - self.area

    def distance_to_point(self, point: Point) -> float:
        """Minimum Euclidean distance from this rectangle to ``point``."""
        if point.floor != self.floor:
            return math.inf
        dx = max(self.xmin - point.x, 0.0, point.x - self.xmax)
        dy = max(self.ymin - point.y, 0.0, point.y - self.ymax)
        return math.hypot(dx, dy)

    def sample_grid(self, step: float) -> Iterable[Point]:
        """Yield a regular lattice of interior points with spacing ``step``.

        The lattice starts ``step/2`` away from the border so that all points
        are strictly inside; this is how reference points (P-locations) are
        laid out by the synthetic generators.
        """
        if step <= 0:
            raise ValueError("step must be positive")
        x = self.xmin + step / 2.0
        while x <= self.xmax - step / 2.0 + 1e-9:
            y = self.ymin + step / 2.0
            while y <= self.ymax - step / 2.0 + 1e-9:
                yield Point(x, y, self.floor)
                y += step
            x += step

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.xmin, self.ymin, self.xmax, self.ymax)

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @staticmethod
    def from_point(point: Point, radius: float = 0.0) -> "Rect":
        """Return the (possibly degenerate) MBR of a point, optionally padded."""
        return Rect(
            point.x - radius,
            point.y - radius,
            point.x + radius,
            point.y + radius,
            point.floor,
        )

    @staticmethod
    def from_points(points: Iterable[Point]) -> "Rect":
        """Return the MBR of a non-empty collection of points on one floor."""
        pts = list(points)
        if not pts:
            raise ValueError("cannot build an MBR from an empty point set")
        floor = pts[0].floor
        if any(p.floor != floor for p in pts):
            raise ValueError("all points must lie on the same floor")
        return Rect(
            min(p.x for p in pts),
            min(p.y for p in pts),
            max(p.x for p in pts),
            max(p.y for p in pts),
            floor,
        )

    @staticmethod
    def union_all(rects: Iterable["Rect"]) -> "Rect":
        """Return the MBR of a non-empty collection of rectangles on one floor."""
        items = list(rects)
        if not items:
            raise ValueError("cannot union an empty rectangle collection")
        result = items[0]
        for rect in items[1:]:
            result = result.union(rect)
        return result
