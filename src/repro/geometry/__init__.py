"""Geometry primitives: points, rectangles, polygons, and ellipses."""

from .ellipse import Ellipse
from .point import Point, interpolate
from .polygon import Polygon, decompose_rectilinear
from .rect import Rect

__all__ = [
    "Ellipse",
    "Point",
    "Polygon",
    "Rect",
    "decompose_rectilinear",
    "interpolate",
]
