"""Simple polygon support for irregular indoor partitions.

The paper decomposes irregular partitions into regular (rectangular) ones
before analysis; this module provides the decomposition helpers plus the small
amount of polygon geometry needed to do so (point containment, area, MBR).
Polygons are simple (non self-intersecting) and live on a single floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .point import Point
from .rect import Rect


@dataclass(frozen=True)
class Polygon:
    """An immutable simple polygon defined by its vertices in order."""

    vertices: Tuple[Point, ...]

    def __init__(self, vertices: Sequence[Point]):
        points = tuple(vertices)
        if len(points) < 3:
            raise ValueError("a polygon needs at least three vertices")
        floor = points[0].floor
        if any(p.floor != floor for p in points):
            raise ValueError("all polygon vertices must lie on the same floor")
        object.__setattr__(self, "vertices", points)

    @property
    def floor(self) -> int:
        return self.vertices[0].floor

    @property
    def area(self) -> float:
        """Unsigned area via the shoelace formula."""
        total = 0.0
        n = len(self.vertices)
        for i in range(n):
            j = (i + 1) % n
            total += self.vertices[i].x * self.vertices[j].y
            total -= self.vertices[j].x * self.vertices[i].y
        return abs(total) / 2.0

    @property
    def mbr(self) -> Rect:
        return Rect.from_points(self.vertices)

    def contains_point(self, point: Point) -> bool:
        """Ray-casting point-in-polygon test (boundary counts as inside)."""
        if point.floor != self.floor:
            return False
        n = len(self.vertices)
        inside = False
        for i in range(n):
            a = self.vertices[i]
            b = self.vertices[(i + 1) % n]
            if _on_segment(point, a, b):
                return True
            if (a.y > point.y) != (b.y > point.y):
                x_cross = a.x + (point.y - a.y) * (b.x - a.x) / (b.y - a.y)
                if point.x < x_cross:
                    inside = not inside
        return inside

    @staticmethod
    def from_rect(rect: Rect) -> "Polygon":
        """Return the rectangle as a four-vertex polygon."""
        return Polygon(
            [
                Point(rect.xmin, rect.ymin, rect.floor),
                Point(rect.xmax, rect.ymin, rect.floor),
                Point(rect.xmax, rect.ymax, rect.floor),
                Point(rect.xmin, rect.ymax, rect.floor),
            ]
        )


def _on_segment(p: Point, a: Point, b: Point, tol: float = 1e-9) -> bool:
    """Whether ``p`` lies on segment ``ab`` within tolerance."""
    cross = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x)
    if abs(cross) > tol:
        return False
    if min(a.x, b.x) - tol <= p.x <= max(a.x, b.x) + tol and (
        min(a.y, b.y) - tol <= p.y <= max(a.y, b.y) + tol
    ):
        return True
    return False


def decompose_rectilinear(polygon: Polygon, cell_size: float) -> List[Rect]:
    """Decompose a (possibly irregular) polygon into axis-aligned rectangles.

    This mirrors the paper's pre-processing of the synthetic building, where
    "irregular partitions ... are decomposed into smaller but regular ones".
    The decomposition rasterises the polygon's MBR into a grid of squares of
    side ``cell_size`` and keeps those whose centre falls inside the polygon.
    The result is approximate but area-preserving up to the grid resolution,
    which is all downstream consumers (partition generation) require.
    """
    if cell_size <= 0:
        raise ValueError("cell_size must be positive")
    mbr = polygon.mbr
    rects: List[Rect] = []
    x = mbr.xmin
    while x < mbr.xmax - 1e-9:
        y = mbr.ymin
        x_hi = min(x + cell_size, mbr.xmax)
        while y < mbr.ymax - 1e-9:
            y_hi = min(y + cell_size, mbr.ymax)
            candidate = Rect(x, y, x_hi, y_hi, mbr.floor)
            if polygon.contains_point(candidate.center):
                rects.append(candidate)
            y = y_hi
        x = x_hi
    return rects
